// Micro-benchmark: Markov solver throughput — steady-state (Gauss-Seidel),
// transient (uniformisation), absorption and IMC scheduler-bound solves on
// birth-death chains plus the xSTream queue and FAME ping-pong case studies.
//
// Besides the google-benchmark mode, `bench_markov --smoke` runs a fast
// self-validation: every solver family is exercised against an analytic
// answer (M/M/1/K steady state, pure-death absorption time, Erlang CDF via
// uniformisation, exact scheduler bounds) plus a bitwise-determinism check
// of the parallel SpMV, and the per-solve telemetry table is printed.
// Exits non-zero on any violation, so CI can gate on it.  `--smoke --json
// PATH` additionally writes a machine-readable verdict with the thread
// budget the solvers ran under.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "core/parallel.hpp"
#include "core/report.hpp"
#include "fame/mpi.hpp"
#include "imc/scheduler.hpp"
#include "markov/absorption.hpp"
#include "markov/ctmc.hpp"
#include "markov/steady.hpp"
#include "markov/transient.hpp"
#include "xstream/perf.hpp"

namespace {

using namespace multival;
using namespace multival::markov;

Ctmc birth_death(std::size_t n, double lambda, double mu) {
  Ctmc c;
  c.add_states(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    c.add_transition(static_cast<MState>(i), static_cast<MState>(i + 1),
                     lambda, "arrive");
    c.add_transition(static_cast<MState>(i + 1), static_cast<MState>(i), mu,
                     "serve");
  }
  return c;
}

Ctmc pure_death(std::size_t n, double rate) {
  Ctmc c;
  c.add_states(n);
  for (std::size_t i = 1; i < n; ++i) {
    c.add_transition(static_cast<MState>(i), static_cast<MState>(i - 1), rate);
  }
  c.set_initial_state(static_cast<MState>(n - 1));
  return c;
}

void BM_SteadyState(benchmark::State& state) {
  const Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)), 0.9,
                             1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(steady_state(c));
  }
}
BENCHMARK(BM_SteadyState)->Arg(100)->Arg(1000)->Arg(4000);

void BM_Transient(benchmark::State& state) {
  const Ctmc c = birth_death(static_cast<std::size_t>(state.range(0)), 0.9,
                             1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transient_distribution(c, 10.0));
  }
}
BENCHMARK(BM_Transient)->Arg(100)->Arg(1000);

void BM_Absorption(benchmark::State& state) {
  // Downward drift into the absorbing bottom state.
  const auto n = static_cast<std::size_t>(state.range(0));
  Ctmc c;
  c.add_states(n);
  for (std::size_t i = 1; i < n; ++i) {
    c.add_transition(static_cast<MState>(i), static_cast<MState>(i - 1), 2.0);
    if (i + 1 < n) {
      c.add_transition(static_cast<MState>(i), static_cast<MState>(i + 1),
                       1.0);
    }
  }
  c.set_initial_state(static_cast<MState>(n - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_time_to_absorption(c));
  }
}
BENCHMARK(BM_Absorption)->Arg(100)->Arg(1000);

void BM_ReachabilityInterval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Ctmc c = birth_death(n, 0.9, 1.0);
  std::vector<bool> target(n, false);
  target[n - 1] = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reachability_probability(c, target));
  }
}
BENCHMARK(BM_ReachabilityInterval)->Arg(100)->Arg(1000);

void BM_XstreamQueue(benchmark::State& state) {
  xstream::QueuePerfParams params;
  params.queue.capacity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xstream::analyze_virtual_queue(params));
  }
}
BENCHMARK(BM_XstreamQueue)->Arg(2)->Arg(4);

void BM_FamePingPong(benchmark::State& state) {
  fame::PingPongConfig config;
  config.rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fame::pingpong_latency(config));
  }
}
BENCHMARK(BM_FamePingPong)->Arg(2)->Arg(4);

// ---- smoke mode -------------------------------------------------------------

bool check(bool ok, const char* what, double got, double want) {
  if (!ok) {
    std::cout << "SMOKE FAIL: " << what << " (got " << got << ", want "
              << want << ")\n";
  }
  return ok;
}

int run_smoke(const std::string& json_path) {
  bool ok = true;
  {
    const core::SolveContext ctx("smoke/mm1k");
    // M/M/1/K steady state vs the analytic geometric distribution.
    const std::size_t n = 50;
    const double rho = 0.9;
    const std::vector<double> pi = steady_state(birth_death(n, rho, 1.0));
    double norm = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      norm += std::pow(rho, static_cast<double>(k));
    }
    for (std::size_t k = 0; k < n; ++k) {
      const double want = std::pow(rho, static_cast<double>(k)) / norm;
      ok = check(std::abs(pi[k] - want) < 1e-8, "mm1k steady state", pi[k],
                 want) &&
           ok;
    }
  }
  {
    const core::SolveContext ctx("smoke/pure-death");
    // Expected absorption time of a pure-death chain: (n-1) / rate.
    const std::size_t n = 200;
    const double got =
        expected_absorption_time_from_initial(pure_death(n, 2.0));
    const double want = static_cast<double>(n - 1) / 2.0;
    ok = check(std::abs(got - want) < 1e-8, "pure-death E[T]", got, want) &&
         ok;
  }
  {
    const core::SolveContext ctx("smoke/erlang");
    // Erlang-k CDF via uniformisation vs the analytic Poisson tail.
    const std::size_t k = 100;
    const double rate = 1.0;
    const double t = 100.0;
    Ctmc c = pure_death(k + 1, rate);  // state k+... counts down
    c.set_initial_state(static_cast<MState>(k));
    std::vector<bool> target(k + 1, false);
    target[0] = true;
    const double got = bounded_reachability(c, target, t, 1e-12);
    double cdf = 0.0;  // P[Poisson(rate*t) >= k]
    for (std::size_t i = 0; i < k; ++i) {
      cdf += std::exp(static_cast<double>(i) * std::log(rate * t) - rate * t -
                      std::lgamma(static_cast<double>(i) + 1.0));
    }
    const double want = 1.0 - cdf;
    ok = check(std::abs(got - want) < 1e-9, "erlang CDF", got, want) && ok;
  }
  {
    const core::SolveContext ctx("smoke/scheduler");
    // Exact interval bounds on the fast-or-slow decision IMC.
    imc::Imc m;
    m.add_states(4);
    m.add_interactive(0, "i", 1);
    m.add_interactive(0, "i", 2);
    m.add_markovian(1, 4.0, 3);
    m.add_markovian(2, 1.0, 3);
    const imc::Bounds b = imc::absorption_time_bounds(m);
    ok = check(std::abs(b.min - 0.25) < 1e-9, "scheduler min", b.min, 0.25) &&
         ok;
    ok = check(std::abs(b.max - 1.0) < 1e-9, "scheduler max", b.max, 1.0) &&
         ok;
  }
  {
    const core::SolveContext ctx("smoke/xstream");
    const xstream::QueuePerfResult r =
        xstream::analyze_virtual_queue(xstream::QueuePerfParams{});
    ok = check(r.throughput > 0.0 && std::isfinite(r.throughput),
               "xstream throughput", r.throughput, 0.0) &&
         ok;
  }
  {
    const core::SolveContext ctx("smoke/fame");
    const fame::PingPongResult r =
        fame::pingpong_latency(fame::PingPongConfig{});
    ok = check(r.total_time > 0.0 && std::isfinite(r.total_time),
               "fame ping-pong", r.total_time, 0.0) &&
         ok;
  }
  {
    // Parallel SpMV must be bitwise identical for any thread budget.
    const Ctmc c = birth_death(3000, 0.9, 1.0);
    double lambda = 0.0;
    const SparseMatrix& p = c.uniformized_dtmc(lambda);
    std::vector<double> x(c.num_states());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 1.0 / static_cast<double>(i + 1);
    }
    const unsigned prev = core::set_parallel_threads(1);
    const std::vector<double> serial = p.multiply_left(x);
    core::set_parallel_threads(4);
    const std::vector<double> parallel = p.multiply_left(x);
    core::set_parallel_threads(prev);
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
      identical = serial[i] == parallel[i];
    }
    ok = check(identical, "SpMV determinism", 0.0, 0.0) && ok;
  }
  core::solve_table().print(std::cout);
  std::cout << (ok ? "SMOKE PASS\n" : "SMOKE FAIL\n");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "ERROR: cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n  \"bench\": \"markov\",\n  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"threads_used\": " << core::parallel_threads()
        << ",\n  \"smoke_pass\": " << (ok ? "true" : "false") << "\n}\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a(argv[i]);
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (smoke) {
    return run_smoke(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
