// Micro-benchmark: explicit-state generation rate of the process-calculus
// engine (the CAESAR-equivalent), on the case-study models.
#include <benchmark/benchmark.h>

#include "fame/coherence.hpp"
#include "noc/mesh.hpp"
#include "proc/generator.hpp"
#include "xstream/queue_model.hpp"

namespace {

using namespace multival;

void BM_GenerateXstreamQueue(benchmark::State& state) {
  xstream::QueueConfig cfg;
  cfg.capacity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xstream::virtual_queue_lts_open(cfg));
  }
}
BENCHMARK(BM_GenerateXstreamQueue)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_GenerateNocMeshStream(benchmark::State& state) {
  const std::vector<noc::Flow> flows{{0, 3}, {1, 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(noc::stream_lts(flows));
  }
}
BENCHMARK(BM_GenerateNocMeshStream);

void BM_GenerateFameCoherence(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fame::coherence_system_lts(fame::Protocol::kMesi));
  }
}
BENCHMARK(BM_GenerateFameCoherence);

}  // namespace

BENCHMARK_MAIN();
