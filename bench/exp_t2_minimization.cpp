// Experiment T2 — "those LTSs can be verified using ... the equivalence
// checking tools (based on bisimulations)": reduction achieved by strong,
// branching and divergence-preserving-branching minimisation on the
// case-study models.
#include <iostream>

#include "bisim/equivalence.hpp"
#include "core/report.hpp"
#include "fame/coherence.hpp"
#include "fame/coherence_n.hpp"
#include "noc/mesh.hpp"
#include "noc/router.hpp"
#include "xstream/queue_model.hpp"

int main() {
  using namespace multival;
  using namespace multival::core;

  Table t("T2: bisimulation minimisation",
          {"model", "states", "strong", "divbranching", "branching", "weak",
           "reduction"});

  const auto row = [&](const std::string& name, const lts::Lts& l) {
    const auto strong = bisim::minimize(l, bisim::Equivalence::kStrong);
    const auto divb =
        bisim::minimize(l, bisim::Equivalence::kDivergenceBranching);
    const auto branching =
        bisim::minimize(l, bisim::Equivalence::kBranching);
    const auto weak = bisim::minimize(l, bisim::Equivalence::kWeak);
    const double factor =
        static_cast<double>(l.num_states()) /
        static_cast<double>(weak.quotient.num_states());
    t.add_row({name, std::to_string(l.num_states()),
               std::to_string(strong.quotient.num_states()),
               std::to_string(divb.quotient.num_states()),
               std::to_string(branching.quotient.num_states()),
               std::to_string(weak.quotient.num_states()),
               fmt(factor, 1) + "x"});
  };

  {
    xstream::QueueConfig cfg;
    cfg.capacity = 2;
    row("xSTream queue (cap 2)", xstream::virtual_queue_lts(cfg));
    cfg.capacity = 3;
    row("xSTream queue (cap 3)", xstream::virtual_queue_lts(cfg));
  }
  row("FAUST router", noc::router_lts(0));
  row("FAUST mesh, 1 packet", noc::single_packet_lts(0, 3));
  row("FAUST mesh, 2 flows", noc::stream_lts({{0, 3}, {1, 3}}));
  row("FAME2 MSI system", fame::coherence_system_lts(fame::Protocol::kMsi));
  row("FAME2 MESI system", fame::coherence_system_lts(fame::Protocol::kMesi));
  row("FAME2 MESI, 3 nodes",
      fame::coherence_system_n_lts(fame::Protocol::kMesi, 3));

  t.print(std::cout);
  return 0;
}
