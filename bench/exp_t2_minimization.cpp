// Experiment T2 — "those LTSs can be verified using ... the equivalence
// checking tools (based on bisimulations)": reduction achieved by strong,
// branching and divergence-preserving-branching minimisation on the
// case-study models.
//
// T2b drives the same models through the default planned pipeline
// (compose::plan_program) and reports the peak intermediate each strategy
// holds in memory — the before/after of making generate–minimise–compose
// the default path.
#include <iostream>
#include <memory>

#include "bisim/equivalence.hpp"
#include "compose/plan.hpp"
#include "core/report.hpp"
#include "fame/coherence.hpp"
#include "fame/coherence_n.hpp"
#include "noc/mesh.hpp"
#include "noc/router.hpp"
#include "proc/process.hpp"
#include "xstream/queue_model.hpp"

int main() {
  using namespace multival;
  using namespace multival::core;

  Table t("T2: bisimulation minimisation",
          {"model", "states", "strong", "divbranching", "branching", "weak",
           "reduction"});

  const auto row = [&](const std::string& name, const lts::Lts& l) {
    const auto strong = bisim::minimize(l, bisim::Equivalence::kStrong);
    const auto divb =
        bisim::minimize(l, bisim::Equivalence::kDivergenceBranching);
    const auto branching =
        bisim::minimize(l, bisim::Equivalence::kBranching);
    const auto weak = bisim::minimize(l, bisim::Equivalence::kWeak);
    const double factor =
        static_cast<double>(l.num_states()) /
        static_cast<double>(weak.quotient.num_states());
    t.add_row({name, std::to_string(l.num_states()),
               std::to_string(strong.quotient.num_states()),
               std::to_string(divb.quotient.num_states()),
               std::to_string(branching.quotient.num_states()),
               std::to_string(weak.quotient.num_states()),
               fmt(factor, 1) + "x"});
  };

  {
    xstream::QueueConfig cfg;
    cfg.capacity = 2;
    row("xSTream queue (cap 2)", xstream::virtual_queue_lts(cfg));
    cfg.capacity = 3;
    row("xSTream queue (cap 3)", xstream::virtual_queue_lts(cfg));
  }
  row("FAUST router", noc::router_lts(0));
  // The minimisation inputs are the *monolithic* state spaces; the default
  // pipeline already returns minimal LTSs (see T2b below).
  row("FAUST mesh, 1 packet",
      noc::single_packet_lts(0, 3, /*hide_links=*/true, {},
                             compose::Strategy::kFlat));
  row("FAUST mesh, 2 flows",
      noc::stream_lts({{0, 3}, {1, 3}}, /*hide_links=*/true, {},
                      compose::Strategy::kFlat));
  row("FAME2 MSI system", fame::coherence_system_lts(fame::Protocol::kMsi));
  row("FAME2 MESI system", fame::coherence_system_lts(fame::Protocol::kMesi));
  row("FAME2 MESI, 3 nodes",
      fame::coherence_system_n_lts(fame::Protocol::kMesi, 3,
                                   compose::Strategy::kFlat));

  t.print(std::cout);
  std::cout << "\n";

  // T2b: peak intermediate held in memory, flat vs the planned pipeline
  // that is now the generators' default.
  Table peaks("T2b: peak intermediate states, monolithic vs planned "
              "pipeline (divbranching, canonical)",
              {"model", "flat peak", "planned peak", "final", "peak/final"});
  const auto peak_row = [&](const std::string& name,
                            std::shared_ptr<const proc::Program> p,
                            const std::string& entry) {
    const compose::PlanOptions opts;
    const compose::PlanResult planned =
        compose::evaluate_plan(compose::plan_program(p, entry, opts), opts);
    const compose::PlanResult flat =
        compose::flat_reference(p, proc::call(entry), opts);
    peaks.add_row(
        {name, std::to_string(flat.stats.peak_states),
         std::to_string(planned.stats.peak_states),
         std::to_string(planned.lts.num_states()),
         fmt(static_cast<double>(planned.stats.peak_states) /
                 static_cast<double>(planned.lts.num_states()),
             2) +
             "x"});
  };
  peak_row("FAUST mesh, 1 packet",
           std::make_shared<proc::Program>(
               noc::single_packet_program(0, 3, /*hide_links=*/true)),
           "Scenario");
  peak_row("FAME2 MSI, 3 nodes",
           std::make_shared<proc::Program>(
               fame::coherence_system_n_program(fame::Protocol::kMsi, 3)),
           "SystemN");
  peak_row("FAME2 MESI, 3 nodes",
           std::make_shared<proc::Program>(
               fame::coherence_system_n_program(fame::Protocol::kMesi, 3)),
           "SystemN");
  peaks.print(std::cout);
  return 0;
}
