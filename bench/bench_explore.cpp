// bench_explore — scaling of the parallel on-the-fly exploration engine
// (src/explore) over worker-thread counts, on the FAME coherence models.
//
// For each model the engine explores the full state space with 1, 2, 4 and
// 8 workers; the table reports wall time, states/sec and the speedup
// relative to the 1-worker run, and every parallel result is checked
// strongly bisimilar to the sequential one (they are in fact identical
// after the deterministic renumbering, which is also asserted).
//
// Note: speedups are only meaningful on a multi-core host.  On a
// single-core container the parallel runs measure the engine's coordination
// overhead instead (speedup <= 1).
//
// Flags: --json PATH (machine-readable copy of the table rows)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bisim/equivalence.hpp"
#include "core/report.hpp"
#include "explore/engine.hpp"
#include "explore/oracle.hpp"
#include "fame/coherence.hpp"
#include "fame/coherence_n.hpp"
#include "lts/lts_io.hpp"
#include "serve/solvers.hpp"

constexpr unsigned kWorkerSweep[] = {1u, 2u, 4u, 8u};

int main(int argc, char** argv) {
  using namespace multival;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_explore [--json PATH]\n";
      return 2;
    }
  }

  struct Model {
    std::string name;
    proc::Program program;
    std::string entry;
  };
  std::vector<Model> models;
  models.push_back({"coherence (MESI, 2 nodes)",
                    fame::coherence_system_program(fame::Protocol::kMesi),
                    "System"});
  models.push_back({"coherence (MESI, 3 nodes)",
                    fame::coherence_system_n_program(fame::Protocol::kMesi, 3),
                    "SystemN"});

  core::Table t("exploration scaling (parallel BFS, exact store)",
                {"model", "workers", "states", "transitions", "time (s)",
                 "states/s", "speedup", "peak frontier"});
  std::ostringstream rows;

  for (const Model& m : models) {
    const auto oracle = explore::proc_oracle(m.program, m.entry);
    double base_seconds = 0.0;
    std::string reference_aut;
    for (unsigned workers : kWorkerSweep) {
      explore::ExploreOptions opts;
      opts.workers = workers;
      const explore::ExploreResult r = explore::explore(*oracle, opts);
      const std::string aut = lts::to_aut(r.lts);
      if (workers == 1) {
        base_seconds = r.stats.seconds;
        reference_aut = aut;
      } else if (aut != reference_aut) {
        // Renumbering guarantees identity; bisimilarity is the weaker
        // fallback diagnostic if that ever regresses.
        std::cerr << "ERROR: " << m.name << " with " << workers
                  << " workers diverged from the sequential result "
                  << "(strongly bisimilar: "
                  << (bisim::equivalent(r.lts, lts::from_aut(reference_aut),
                                        bisim::Equivalence::kStrong)
                          ? "yes"
                          : "NO")
                  << ")\n";
        return 1;
      }
      t.add_row({m.name, std::to_string(workers),
                 std::to_string(r.stats.num_states),
                 std::to_string(r.stats.num_transitions),
                 core::fmt(r.stats.seconds),
                 std::to_string(static_cast<long long>(r.stats.states_per_sec)),
                 core::fmt(base_seconds / r.stats.seconds, 2),
                 std::to_string(r.stats.peak_frontier)});
      if (rows.tellp() > 0) {
        rows << ",\n";
      }
      rows << "    {\"model\": \"" << m.name << "\", \"workers\": " << workers
           << ", \"states\": " << r.stats.num_states
           << ", \"transitions\": " << r.stats.num_transitions
           << ", \"seconds\": " << serve::format_double(r.stats.seconds)
           << ", \"states_per_sec\": "
           << serve::format_double(r.stats.states_per_sec)
           << ", \"speedup\": "
           << serve::format_double(base_seconds / r.stats.seconds)
           << ", \"peak_frontier\": " << r.stats.peak_frontier << "}";
    }
  }
  t.print(std::cout);
  std::cout << "\nhardware concurrency: "
            << std::thread::hardware_concurrency() << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "ERROR: cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n  \"bench\": \"explore\",\n  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"threads_used\": "
        << kWorkerSweep[std::size(kWorkerSweep) - 1]
        << ",\n  \"rows\": [\n"
        << std::move(rows).str() << "\n  ]\n}\n";
  }
  return 0;
}
