// bench_serve — multi-replica load harness for the evaluation service
// (src/serve).
//
// The parent starts N replica servers (Unix sockets by default, TCP with
// --tcp), then fork+execs M *client processes* (re-invoking this binary in
// a hidden --worker-client mode, so no threads cross a fork).  Each worker
// builds the same consistent-hash ring over the replica endpoints
// (serve::Router) and issues a stream of CTMC reachability solves with a
// configurable duplicate-request ratio through a serve::RoutedClient.
//
// The run self-validates:
//   - every response body is compared against the direct in-process solve
//     of the same request (serve::solve_request), so an R-replica run is
//     byte-identical to a single-replica run by transitivity — any
//     mismatch fails the bench;
//   - duplicates land on the replica that owns their cache entry: summed
//     over the fleet, each distinct model is solved exactly once, and the
//     observed routing locality (owner-served fraction) must be 1.0 with
//     every replica healthy;
//   - nothing is shed (the queues are sized for the offered load).
//
// Reported (and written to --json): throughput, client-observed latency
// p50/p99, shed rate, routing locality, failover/transport-error counts,
// and the fleet-summed cache/coalescing/batching counters.
//
// Flags: --replicas N  --clients M (processes)  --requests N (per client)
//        --dup R (0..1)  --workers N (per replica)  --tcp
//        --smoke (tiny deterministic 2-replica run for CI)
//        --json PATH (machine-readable copy of the report)
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/parallel.hpp"
#include "core/report.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/solvers.hpp"

namespace {

using namespace multival;

std::string model_text(std::size_t id) {
  // Distinct rate -> distinct content hash -> distinct cache key.
  return "des (0, 3, 4)\n"
         "(0, \"rate " + std::to_string(id + 1) + ".0\", 1)\n"
         "(1, \"STEP; rate 2.0\", 2)\n"
         "(2, \"rate 1.0\", 3)\n";
}

serve::Request make_solve(std::size_t global_index, std::size_t distinct) {
  serve::Request r;
  r.id = global_index + 1;
  r.verb = serve::Verb::kReach;
  r.payload = model_text(global_index % distinct);
  return r;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size() - 1)));
  return samples[idx];
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ',') {
      if (i > start) {
        out.push_back(s.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

// --- hidden worker mode --------------------------------------------------
//
// bench_serve --worker-client IDX --endpoints a,b --requests N --distinct D
//             --out PATH
//
// Runs the client stream for worker IDX and writes its samples and routing
// counters to PATH (one file per worker; the parent aggregates).

int run_worker(int argc, char** argv) {
  std::size_t idx = 0;
  std::size_t requests = 0;
  std::size_t distinct = 1;
  std::vector<std::string> endpoints;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--worker-client" && i + 1 < argc) {
      idx = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--endpoints" && i + 1 < argc) {
      endpoints = split_csv(argv[++i]);
    } else if (a == "--requests" && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--distinct" && i + 1 < argc) {
      distinct = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "worker: unknown flag " << a << "\n";
      return 2;
    }
  }
  if (endpoints.empty() || requests == 0 || distinct == 0 ||
      out_path.empty()) {
    std::cerr << "worker: missing --endpoints/--requests/--distinct/--out\n";
    return 2;
  }

  auto router = std::make_shared<serve::Router>(endpoints);
  serve::RoutedClient client(router, std::chrono::milliseconds(5000));

  std::vector<double> latencies;
  latencies.reserve(requests);
  std::uint64_t failures = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t overloaded = 0;
  std::unordered_map<std::size_t, std::string> expected;  // model -> body
  for (std::size_t j = 0; j < requests; ++j) {
    const std::size_t g = idx * requests + j;
    const serve::Request r = make_solve(g, distinct);
    const auto start = std::chrono::steady_clock::now();
    serve::Response resp;
    try {
      resp = client.call(r);
    } catch (const std::exception& e) {
      std::cerr << "worker " << idx << ": " << e.what() << "\n";
      ++failures;
      continue;
    }
    const auto end = std::chrono::steady_clock::now();
    latencies.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (resp.status == serve::Status::kOverloaded) {
      ++overloaded;
      continue;
    }
    if (resp.status != serve::Status::kOk) {
      ++failures;
      continue;
    }
    // Byte-identical check against the direct in-process solve (computed
    // once per distinct model).
    auto it = expected.find(g % distinct);
    if (it == expected.end()) {
      it = expected.emplace(g % distinct, serve::solve_request(r)).first;
    }
    if (resp.body != it->second) {
      std::cerr << "worker " << idx << ": body mismatch for model "
                << (g % distinct) << ": '" << resp.body << "' != '"
                << it->second << "'\n";
      ++mismatches;
    }
  }

  const serve::RoutedClientStats& s = client.stats();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "worker " << idx << ": cannot write " << out_path << "\n";
    return 1;
  }
  out << "counts " << failures << " " << mismatches << " " << overloaded
      << "\n";
  out << "routing " << s.calls << " " << s.primary << " " << s.failover
      << " " << s.transport_errors << "\n";
  for (const double ms : latencies) {
    out << "lat " << serve::format_double(ms) << "\n";
  }
  return out.good() ? 0 : 1;
}

struct WorkerReport {
  std::uint64_t failures = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t calls = 0;
  std::uint64_t primary = 0;
  std::uint64_t failover = 0;
  std::uint64_t transport_errors = 0;
  std::vector<double> latencies;
};

bool read_worker_report(const std::string& path, WorkerReport& agg) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string tag;
  bool have_counts = false;
  bool have_routing = false;
  while (in >> tag) {
    if (tag == "counts") {
      std::uint64_t f = 0;
      std::uint64_t m = 0;
      std::uint64_t o = 0;
      in >> f >> m >> o;
      agg.failures += f;
      agg.mismatches += m;
      agg.overloaded += o;
      have_counts = true;
    } else if (tag == "routing") {
      std::uint64_t c = 0;
      std::uint64_t p = 0;
      std::uint64_t fo = 0;
      std::uint64_t te = 0;
      in >> c >> p >> fo >> te;
      agg.calls += c;
      agg.primary += p;
      agg.failover += fo;
      agg.transport_errors += te;
      have_routing = true;
    } else if (tag == "lat") {
      double ms = 0.0;
      in >> ms;
      agg.latencies.push_back(ms);
    } else {
      return false;
    }
  }
  return have_counts && have_routing;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--worker-client") {
      return run_worker(argc, argv);
    }
  }

  std::size_t replicas = 1;
  std::size_t clients = 4;
  std::size_t requests = 32;
  double dup_ratio = 0.5;
  unsigned workers = 0;
  bool tcp = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--replicas" && i + 1 < argc) {
      replicas = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--clients" && i + 1 < argc) {
      clients = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--requests" && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--dup" && i + 1 < argc) {
      dup_ratio = std::strtod(argv[++i], nullptr);
    } else if (a == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--tcp") {
      tcp = true;
    } else if (a == "--smoke") {
      replicas = 2;
      clients = 2;
      requests = 8;
      dup_ratio = 0.5;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--replicas N] [--clients M] "
                   "[--requests N] [--dup R] [--workers N] [--tcp] "
                   "[--smoke] [--json PATH]\n";
      return 2;
    }
  }
  if (replicas == 0 || clients == 0 || requests == 0 || dup_ratio < 0.0 ||
      dup_ratio >= 1.0) {
    std::cerr << "bench_serve: need replicas>0, clients>0, requests>0, "
                 "0<=dup<1\n";
    return 2;
  }

  const std::size_t total = clients * requests;
  const std::size_t distinct = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(static_cast<double>(total) * (1.0 - dup_ratio))));

  // Start the replica fleet.  Binding happens in the Server constructor, so
  // every endpoint (including TCP ephemeral ports) is connectable before
  // any client process is spawned.
  // 0 resolves to the parallel default inside serve::Service; record the
  // actual per-replica worker-thread count for the JSON payload.
  const unsigned resolved_workers =
      workers != 0 ? workers : core::parallel_threads();
  const std::string tag = std::to_string(::getpid());
  std::vector<std::unique_ptr<serve::Server>> fleet;
  std::vector<std::thread> accept_threads;
  std::vector<std::string> endpoints;
  for (std::size_t rep = 0; rep < replicas; ++rep) {
    serve::ServerOptions opts;
    opts.endpoint = tcp ? "127.0.0.1:0"
                        : "/tmp/mvserve_bench_" + tag + "_" +
                              std::to_string(rep) + ".sock";
    opts.service.workers = workers;
    // This run measures caching/routing, not shedding: size the queue so
    // nothing is rejected (bench of the overload path is in serve_test).
    opts.service.queue_capacity = total + 16;
    fleet.push_back(std::make_unique<serve::Server>(std::move(opts)));
    endpoints.push_back(fleet.back()->bound_endpoint().to_string());
  }
  for (auto& server : fleet) {
    accept_threads.emplace_back([&server] { server->run(); });
  }
  std::string endpoint_csv;
  for (const std::string& e : endpoints) {
    endpoint_csv += (endpoint_csv.empty() ? "" : ",") + e;
  }

  // Spawn the client processes: fork + exec of this binary in worker mode.
  // exec (rather than running the stream in the forked child) keeps the
  // child single-threaded from the start — the parent runs server threads,
  // and forking a multithreaded process is only safe up to the exec.
  std::vector<pid_t> pids;
  std::vector<std::string> out_paths;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    out_paths.push_back("/tmp/mvserve_bench_" + tag + "_worker" +
                        std::to_string(c) + ".txt");
    std::vector<std::string> args = {
        argv[0],          "--worker-client", std::to_string(c),
        "--endpoints",    endpoint_csv,      "--requests",
        std::to_string(requests),            "--distinct",
        std::to_string(distinct),            "--out",
        out_paths.back()};
    std::vector<char*> cargs;
    cargs.reserve(args.size() + 1);
    for (std::string& a : args) {
      cargs.push_back(a.data());
    }
    cargs.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execv(cargs[0], cargs.data());
      ::_exit(127);  // exec failed
    }
    if (pid < 0) {
      std::cerr << "bench_serve: fork failed\n";
      return 1;
    }
    pids.push_back(pid);
  }

  std::uint64_t worker_failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::cerr << "bench_serve: worker process " << pid << " failed\n";
      ++worker_failures;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (auto& server : fleet) {
    server->stop();
  }
  for (std::thread& t : accept_threads) {
    t.join();
  }

  WorkerReport agg;
  for (const std::string& path : out_paths) {
    if (!read_worker_report(path, agg)) {
      std::cerr << "bench_serve: missing/corrupt worker report " << path
                << "\n";
      ++worker_failures;
    }
    ::unlink(path.c_str());
  }

  // Fleet-summed service metrics.
  serve::ServiceMetrics m;
  std::vector<serve::ServiceMetrics> per_replica;
  for (auto& server : fleet) {
    const serve::ServiceMetrics r = server->service().metrics();
    per_replica.push_back(r);
    m.accepted += r.accepted;
    m.completed_ok += r.completed_ok;
    m.shed += r.shed;
    m.coalesced += r.coalesced;
    m.cache_hits += r.cache_hits;
    m.solves += r.solves;
    m.solve_errors += r.solve_errors;
    m.batches += r.batches;
    m.batched += r.batched;
    m.max_batch = std::max(m.max_batch, r.max_batch);
  }
  const double locality =
      agg.primary + agg.failover == 0
          ? 0.0
          : static_cast<double>(agg.primary) /
                static_cast<double>(agg.primary + agg.failover);
  const double shed_rate =
      total == 0 ? 0.0
                 : static_cast<double>(agg.overloaded) /
                       static_cast<double>(total);

  core::Table t("serve load benchmark", {"metric", "value"});
  t.add_row({"transport", tcp ? "tcp" : "unix"});
  t.add_row({"replicas", std::to_string(replicas)});
  t.add_row({"client processes", std::to_string(clients)});
  t.add_row({"requests/client", std::to_string(requests)});
  t.add_row({"total requests", std::to_string(total)});
  t.add_row({"distinct models", std::to_string(distinct)});
  t.add_row({"duplicate ratio",
             core::fmt(1.0 - static_cast<double>(distinct) /
                                 static_cast<double>(total), 3)});
  t.add_row({"wall time (s)", core::fmt(wall, 3)});
  t.add_row({"throughput (req/s)",
             core::fmt(static_cast<double>(total) / wall, 1)});
  t.add_row({"latency p50 (ms)",
             core::fmt(percentile(agg.latencies, 0.50), 3)});
  t.add_row({"latency p99 (ms)",
             core::fmt(percentile(agg.latencies, 0.99), 3)});
  t.add_row({"routing locality", core::fmt(locality, 3)});
  t.add_row({"failover calls", std::to_string(agg.failover)});
  t.add_row({"transport errors", std::to_string(agg.transport_errors)});
  t.add_row({"shed rate", core::fmt(shed_rate, 3)});
  t.add_row({"solves (fleet)", std::to_string(m.solves)});
  t.add_row({"coalesced (fleet)", std::to_string(m.coalesced)});
  t.add_row({"cache hits (fleet)", std::to_string(m.cache_hits)});
  t.add_row({"cache hit rate",
             core::fmt(static_cast<double>(m.cache_hits + m.coalesced) /
                           static_cast<double>(total), 3)});
  t.add_row({"batches / flights batched", std::to_string(m.batches) + " / " +
                                              std::to_string(m.batched)});
  t.print(std::cout);
  for (std::size_t rep = 0; rep < per_replica.size(); ++rep) {
    std::cout << "\nreplica " << rep << " (" << endpoints[rep] << "):\n";
    per_replica[rep].to_table().print(std::cout);
  }

  if (!json_path.empty()) {
    const auto num = [](double v) { return serve::format_double(v); };
    std::ostringstream os;
    os << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"transport\": \"" << (tcp ? "tcp" : "unix") << "\",\n"
       << "  \"replicas\": " << replicas << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"workers_per_replica\": " << resolved_workers << ",\n"
       << "  \"threads_used\": " << resolved_workers * replicas << ",\n"
       << "  \"client_processes\": " << clients << ",\n"
       << "  \"requests_per_client\": " << requests << ",\n"
       << "  \"total_requests\": " << total << ",\n"
       << "  \"distinct_models\": " << distinct << ",\n"
       << "  \"wall_s\": " << num(wall) << ",\n"
       << "  \"throughput_rps\": "
       << num(static_cast<double>(total) / wall) << ",\n"
       << "  \"latency_p50_ms\": " << num(percentile(agg.latencies, 0.50))
       << ",\n"
       << "  \"latency_p99_ms\": " << num(percentile(agg.latencies, 0.99))
       << ",\n"
       << "  \"routing_locality\": " << num(locality) << ",\n"
       << "  \"failover\": " << agg.failover << ",\n"
       << "  \"transport_errors\": " << agg.transport_errors << ",\n"
       << "  \"shed\": " << agg.overloaded << ",\n"
       << "  \"shed_rate\": " << num(shed_rate) << ",\n"
       << "  \"solves\": " << m.solves << ",\n"
       << "  \"coalesced\": " << m.coalesced << ",\n"
       << "  \"cache_hits\": " << m.cache_hits << ",\n"
       << "  \"batches\": " << m.batches << ",\n"
       << "  \"flights_batched\": " << m.batched << ",\n"
       << "  \"max_batch\": " << m.max_batch << ",\n"
       << "  \"failures\": " << (agg.failures + worker_failures) << ",\n"
       << "  \"mismatches\": " << agg.mismatches << "\n"
       << "}\n";
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "ERROR: cannot write " << json_path << "\n";
      return 1;
    }
    out << std::move(os).str();
  }

  // Self-validation: the acceptance properties of the routed, coalescing,
  // sharded cache.
  bool ok = true;
  if (worker_failures != 0 || agg.failures != 0) {
    std::cerr << "ERROR: " << (worker_failures + agg.failures)
              << " requests/workers failed\n";
    ok = false;
  }
  if (agg.mismatches != 0) {
    std::cerr << "ERROR: " << agg.mismatches
              << " responses differ from the direct in-process solve\n";
    ok = false;
  }
  if (m.solves != distinct) {
    std::cerr << "ERROR: expected exactly one solve per distinct model "
              << "across the fleet (" << distinct << "), got " << m.solves
              << " — duplicates did not all land on the owning replica\n";
    ok = false;
  }
  if (m.cache_hits + m.coalesced != total - distinct) {
    std::cerr << "ERROR: duplicates (" << (total - distinct)
              << ") != cache hits (" << m.cache_hits << ") + coalesced ("
              << m.coalesced << ")\n";
    ok = false;
  }
  if (agg.failover != 0 || locality < 1.0) {
    std::cerr << "ERROR: with every replica healthy all calls must hit the "
              << "ring owner (locality " << locality << ", failover "
              << agg.failover << ")\n";
    ok = false;
  }
  if (m.shed != 0 || agg.overloaded != 0) {
    std::cerr << "ERROR: " << (m.shed + agg.overloaded)
              << " requests shed with an oversized queue\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
