// bench_serve — load generator for the evaluation service (src/serve).
//
// Spawns N concurrent client connections against a freshly started
// Unix-domain-socket server; each client issues a stream of CTMC
// reachability solves with a configurable duplicate-request ratio, so the
// run exercises the content-addressed cache and the request coalescer
// under contention.  The run self-validates: every request must succeed,
// and the service must solve each *distinct* model exactly once — all
// duplicates are either coalesced into an in-flight solve or served from
// the cache (asserted from the service counters; exit 1 on violation).
//
// Reported: throughput (requests/s), client-observed latency p50/p99, the
// duplicate ratio actually generated, and the cache/coalescing counters.
//
// Note: on a single-core container the numbers measure the service's
// coordination overhead, not parallel solve scaling.
//
// Flags: --clients N  --requests N (per client)  --dup R (0..1)
//        --workers N  --smoke (tiny deterministic run for CI)
//        --json PATH (machine-readable copy of the report)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/solvers.hpp"

namespace {

using namespace multival;

std::string model_text(std::size_t id) {
  // Distinct rate -> distinct content hash -> distinct cache key.
  return "des (0, 3, 4)\n"
         "(0, \"rate " + std::to_string(id + 1) + ".0\", 1)\n"
         "(1, \"STEP; rate 2.0\", 2)\n"
         "(2, \"rate 1.0\", 3)\n";
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size() - 1)));
  return samples[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 32;
  std::size_t requests = 8;
  double dup_ratio = 0.5;
  unsigned workers = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--clients" && i + 1 < argc) {
      clients = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--requests" && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--dup" && i + 1 < argc) {
      dup_ratio = std::strtod(argv[++i], nullptr);
    } else if (a == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--smoke") {
      clients = 4;
      requests = 4;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--clients N] [--requests N] "
                   "[--dup R] [--workers N] [--smoke] [--json PATH]\n";
      return 2;
    }
  }
  if (clients == 0 || requests == 0 || dup_ratio < 0.0 || dup_ratio >= 1.0) {
    std::cerr << "bench_serve: need clients>0, requests>0, 0<=dup<1\n";
    return 2;
  }

  const std::size_t total = clients * requests;
  const std::size_t distinct = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(static_cast<double>(total) * (1.0 - dup_ratio))));

  serve::ServerOptions opts;
  opts.socket_path =
      "/tmp/mvserve_bench_" + std::to_string(::getpid()) + ".sock";
  opts.service.workers = workers;
  // This run measures caching/coalescing, not shedding: size the queue so
  // nothing is rejected (bench of the overload path is in serve_test).
  opts.service.queue_capacity = total + 16;
  serve::Server server(opts);
  std::thread server_thread([&server] { server.run(); });

  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      try {
        serve::Client client(opts.socket_path);
        latencies[c].reserve(requests);
        for (std::size_t j = 0; j < requests; ++j) {
          const std::size_t g = c * requests + j;
          serve::Request r;
          r.id = g + 1;
          r.verb = serve::Verb::kReach;
          r.payload = model_text(g % distinct);
          const auto start = std::chrono::steady_clock::now();
          const serve::Response resp = client.call(r);
          const auto end = std::chrono::steady_clock::now();
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(end - start).count());
          if (resp.status != serve::Status::kOk) {
            ++failures;
          }
        }
      } catch (const std::exception& e) {
        std::cerr << "client " << c << ": " << e.what() << "\n";
        failures += requests;
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  {
    serve::Client stopper(opts.socket_path);
    serve::Request bye;
    bye.id = total + 1;
    bye.verb = serve::Verb::kShutdown;
    (void)stopper.call(bye);
  }
  server_thread.join();

  const serve::ServiceMetrics m = server.service().metrics();
  std::vector<double> all;
  all.reserve(total);
  for (const auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }

  core::Table t("serve load benchmark", {"metric", "value"});
  t.add_row({"clients", std::to_string(clients)});
  t.add_row({"requests/client", std::to_string(requests)});
  t.add_row({"total requests", std::to_string(total)});
  t.add_row({"distinct models", std::to_string(distinct)});
  t.add_row({"duplicate ratio",
             core::fmt(1.0 - static_cast<double>(distinct) /
                                 static_cast<double>(total), 3)});
  t.add_row({"wall time (s)", core::fmt(wall, 3)});
  t.add_row({"throughput (req/s)",
             core::fmt(static_cast<double>(total) / wall, 1)});
  t.add_row({"latency p50 (ms)", core::fmt(percentile(all, 0.50), 3)});
  t.add_row({"latency p99 (ms)", core::fmt(percentile(all, 0.99), 3)});
  t.add_row({"solves", std::to_string(m.solves)});
  t.add_row({"coalesced", std::to_string(m.coalesced)});
  t.add_row({"cache hits", std::to_string(m.cache_hits)});
  t.add_row({"cache hit rate",
             core::fmt(static_cast<double>(m.cache_hits + m.coalesced) /
                           static_cast<double>(total), 3)});
  t.print(std::cout);
  std::cout << "\n";
  m.to_table().print(std::cout);

  if (!json_path.empty()) {
    const auto num = [](double v) { return serve::format_double(v); };
    std::ostringstream os;
    os << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"requests_per_client\": " << requests << ",\n"
       << "  \"total_requests\": " << total << ",\n"
       << "  \"distinct_models\": " << distinct << ",\n"
       << "  \"wall_s\": " << num(wall) << ",\n"
       << "  \"throughput_rps\": "
       << num(static_cast<double>(total) / wall) << ",\n"
       << "  \"latency_p50_ms\": " << num(percentile(all, 0.50)) << ",\n"
       << "  \"latency_p99_ms\": " << num(percentile(all, 0.99)) << ",\n"
       << "  \"solves\": " << m.solves << ",\n"
       << "  \"coalesced\": " << m.coalesced << ",\n"
       << "  \"cache_hits\": " << m.cache_hits << ",\n"
       << "  \"shed\": " << m.shed << ",\n"
       << "  \"failures\": " << failures.load() << "\n"
       << "}\n";
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "ERROR: cannot write " << json_path << "\n";
      return 1;
    }
    out << std::move(os).str();
  }

  // Self-validation: the acceptance property of the coalescing cache.
  bool ok = true;
  if (failures != 0) {
    std::cerr << "ERROR: " << failures << " requests failed\n";
    ok = false;
  }
  if (m.solves != distinct) {
    std::cerr << "ERROR: expected exactly one solve per distinct model ("
              << distinct << "), got " << m.solves << "\n";
    ok = false;
  }
  if (m.cache_hits + m.coalesced != total - distinct) {
    std::cerr << "ERROR: duplicates (" << (total - distinct)
              << ") != cache hits (" << m.cache_hits << ") + coalesced ("
              << m.coalesced << ")\n";
    ok = false;
  }
  if (m.shed != 0) {
    std::cerr << "ERROR: " << m.shed << " requests shed with an oversized "
              << "queue\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
