// Experiment X1 — structural deadlock detection on xMAS fabrics: the MV03x
// netlist lint runs a polynomial carriability fixed point on the wiring
// graph, so the seeded credit-loop deadlock is rejected in microseconds
// with ZERO states generated, while actually exploring the repaired twin
// costs a real state space.  The exhibit doubles as a CI gate (exit
// nonzero) for the PR acceptance criteria: the seeded fabric must fail
// with MV031 at 0 states, and the repaired twin must compile, solve end to
// end, and give byte-identical planned-vs-flat canonical results.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>

#include "analyze/analyze.hpp"
#include "bisim/reduction.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "dse/scenario.hpp"
#include "explore/lts_stream.hpp"
#include "imc/imc_io.hpp"
#include "serve/solvers.hpp"
#include "xmas/compile.hpp"
#include "xmas/netlist.hpp"

int main() {
  using namespace multival;
  using multival::core::fmt;

  bool ok = true;
  const auto gate = [&](bool condition, const std::string& what) {
    if (!condition) {
      std::cerr << "X1 GATE FAILED: " << what << "\n";
      ok = false;
    }
  };

  core::Table t("X1: structural deadlock lint vs state-space exploration",
                {"fabric", "verdict", "lint us", "passes", "lint states",
                 "explored states"});

  for (const std::string& name : xmas::builtin_fabric_names()) {
    const xmas::Netlist fabric = xmas::builtin_fabric(name);
    const analyze::Analysis a = analyze::lint_netlist(fabric);
    gate(a.stats.states_generated == 0,
         name + ": the netlist lint must never generate states");

    std::string verdict = "clean";
    std::string explored = "-";
    if (core::has_errors(a.diagnostics)) {
      verdict = a.diagnostics.front().code + " deadlock";
      gate(name == "credit-loop-deadlock",
           name + ": only the seeded fabric may fail the lint");
    } else {
      const auto compiled = xmas::compile(fabric);
      const lts::Lts flat =
          xmas::compiled_lts(compiled, compose::Strategy::kFlat);
      explored = std::to_string(flat.num_states());
    }
    t.add_row({name, verdict, fmt(a.stats.seconds * 1e6, 1),
               std::to_string(a.stats.fixpoint_passes),
               std::to_string(a.stats.states_generated), explored});
  }
  t.print(std::cout);

  // The seeded deadlock must be refused by the compiler too.
  bool threw = false;
  try {
    (void)xmas::compile(xmas::builtin_fabric("credit-loop-deadlock"));
  } catch (const std::invalid_argument& e) {
    threw = std::string(e.what()).find("MV031") != std::string::npos;
  }
  gate(threw, "compile(credit-loop-deadlock) must throw citing MV031");

  // The repaired twin solves end to end, with byte-identical canonical
  // results across strategies.
  {
    const auto c = xmas::compile(xmas::builtin_fabric("credit-loop"));
    const lts::Lts planned =
        xmas::compiled_lts(c, compose::Strategy::kPlanned);
    const lts::Lts flat = xmas::compiled_lts(c, compose::Strategy::kFlat);
    const auto serialized = [](const lts::Lts& l) {
      std::ostringstream os;
      explore::write_lts_stream(os, l);
      return os.str();
    };
    gate(serialized(bisim::canonical_minimized(planned)) ==
             serialized(bisim::canonical_minimized(flat)),
         "planned and flat canonical forms must be byte-identical");

    serve::Request r;
    r.id = 1;
    r.verb = serve::Verb::kThroughput;
    r.arg = "uniform:POP*";
    r.payload = imc::to_aut(
        core::decorate_with_rates(planned, xmas::rate_table(c, 1.0, 2.0,
                                                            10.0)));
    const double tp = dse::parse_throughput(serve::solve_request(r));
    gate(tp > 0.0 && std::isfinite(tp),
         "the repaired twin must yield a positive finite throughput");
    std::cout << "\nrepaired credit-loop: throughput(POP*) = " << fmt(tp, 6)
              << " (planned strategy, " << planned.num_states()
              << " states)\n";
  }

  std::cout << (ok ? "\nX1 gate: all checks passed\n"
                   : "\nX1 gate: FAILURES above\n");
  return ok ? 0 : 1;
}
