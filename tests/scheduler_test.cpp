// Tests for the nondeterminism-bounds module (imc/scheduler).
#include <gtest/gtest.h>

#include <cmath>

#include "imc/compose.hpp"
#include "imc/scheduler.hpp"
#include "markov/absorption.hpp"

namespace {

using namespace multival;
using namespace multival::imc;

// A decision between a fast (rate 4) and a slow (rate 1) path to absorption.
Imc fast_or_slow() {
  Imc m;
  m.add_states(4);
  m.add_interactive(0, "i", 1);
  m.add_interactive(0, "i", 2);
  m.add_markovian(1, 4.0, 3);
  m.add_markovian(2, 1.0, 3);
  return m;
}

TEST(Scheduler, TimeBoundsBracketTheTwoPaths) {
  const Bounds b = absorption_time_bounds(fast_or_slow());
  EXPECT_NEAR(b.min, 0.25, 1e-9);
  EXPECT_NEAR(b.max, 1.0, 1e-9);
}

TEST(Scheduler, UniformPolicyLiesBetweenBounds) {
  const Imc m = fast_or_slow();
  const Bounds b = absorption_time_bounds(m);
  const CtmcExtraction e = to_ctmc(m, NondetPolicy::kUniform);
  const double uniform =
      markov::expected_absorption_time_from_initial(e.ctmc);
  EXPECT_GE(uniform, b.min - 1e-9);
  EXPECT_LE(uniform, b.max + 1e-9);
  EXPECT_NEAR(uniform, 0.5 * 0.25 + 0.5 * 1.0, 1e-9);
}

TEST(Scheduler, DeterministicModelHasTightBounds) {
  Imc m;
  m.add_states(3);
  m.add_markovian(0, 2.0, 1);
  m.add_interactive(1, "i", 2);
  const Bounds b = absorption_time_bounds(m);
  EXPECT_NEAR(b.min, b.max, 1e-9);
  EXPECT_NEAR(b.min, 0.5, 1e-9);
}

TEST(Scheduler, ReachabilityBounds) {
  // Decision: go to target directly, or to a rate race that reaches the
  // target with probability 1/3.
  Imc m;
  m.add_states(4);
  m.add_interactive(0, "i", 1);  // decision A: certain
  m.add_interactive(0, "i", 2);  // decision B: race
  m.add_markovian(2, 1.0, 1);
  m.add_markovian(2, 2.0, 3);
  std::vector<bool> target(4, false);
  target[1] = true;
  const Bounds b = reachability_bounds(m, target);
  EXPECT_NEAR(b.max, 1.0, 1e-9);
  EXPECT_NEAR(b.min, 1.0 / 3.0, 1e-9);
}

TEST(Scheduler, AvoidableAbsorptionGivesInfiniteMax) {
  // The decision at state 0: delay to the absorbing state 3, or delay back
  // to the decision — a scheduler that always picks the loop never absorbs.
  Imc k;
  k.add_states(4);
  k.add_interactive(0, "i", 1);
  k.add_interactive(0, "i", 2);
  k.add_markovian(1, 2.0, 3);  // absorb at 3
  k.add_markovian(2, 1.0, 0);  // recurrent loop back to the decision
  const Bounds b = absorption_time_bounds(k);
  EXPECT_NEAR(b.min, 0.5, 1e-9);
  EXPECT_TRUE(std::isinf(b.max));
}

TEST(Scheduler, UnreachableAbsorptionGivesInfiniteBoth) {
  Imc m;
  m.add_states(2);
  m.add_markovian(0, 1.0, 1);
  m.add_markovian(1, 1.0, 0);
  const Bounds b = absorption_time_bounds(m);
  EXPECT_TRUE(std::isinf(b.min));
  EXPECT_TRUE(std::isinf(b.max));
}

TEST(Scheduler, ExtractedSchedulerAchievesBound) {
  const Imc m = fast_or_slow();
  const Bounds b = absorption_time_bounds(m);
  // Apply the time-optimal and worst-case schedulers; solving the induced
  // deterministic chain must reproduce the respective bound exactly.
  const Imc best = apply_scheduler(m, extract_time_scheduler(m, false));
  const Imc worst = apply_scheduler(m, extract_time_scheduler(m, true));
  const auto eb = to_ctmc(best);
  const auto ew = to_ctmc(worst);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(eb.ctmc), b.min,
              1e-9);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(ew.ctmc), b.max,
              1e-9);
}

TEST(Scheduler, AppliedSchedulerIsDeterministic) {
  const Imc m = fast_or_slow();
  const Imc d = apply_scheduler(m, extract_time_scheduler(m, false));
  for (StateId s = 0; s < d.num_states(); ++s) {
    EXPECT_LE(d.interactive(s).size(), 1u);
  }
  // A deterministic IMC extracts without a policy.
  EXPECT_NO_THROW((void)to_ctmc(d));
}

TEST(Scheduler, ApplySchedulerValidation) {
  Imc m;
  m.add_states(2);
  m.add_interactive(0, "i", 1);
  EXPECT_THROW((void)apply_scheduler(m, Scheduler{}),
               std::invalid_argument);
  EXPECT_THROW((void)apply_scheduler(m, Scheduler{5, 0}),
               std::invalid_argument);
}

TEST(Scheduler, SizeMismatchThrows) {
  Imc m;
  m.add_states(2);
  EXPECT_THROW((void)reachability_bounds(m, {true}), std::invalid_argument);
}

TEST(Scheduler, EmptyImc) {
  Imc m;
  const Bounds b = absorption_time_bounds(m);
  EXPECT_DOUBLE_EQ(b.min, 0.0);
  EXPECT_DOUBLE_EQ(b.max, 0.0);
}

}  // namespace
