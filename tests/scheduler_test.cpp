// Tests for the nondeterminism-bounds module (imc/scheduler).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "imc/compose.hpp"
#include "imc/scheduler.hpp"
#include "markov/absorption.hpp"

namespace {

using namespace multival;
using namespace multival::imc;

// A decision between a fast (rate 4) and a slow (rate 1) path to absorption.
Imc fast_or_slow() {
  Imc m;
  m.add_states(4);
  m.add_interactive(0, "i", 1);
  m.add_interactive(0, "i", 2);
  m.add_markovian(1, 4.0, 3);
  m.add_markovian(2, 1.0, 3);
  return m;
}

TEST(Scheduler, TimeBoundsBracketTheTwoPaths) {
  const Bounds b = absorption_time_bounds(fast_or_slow());
  EXPECT_NEAR(b.min, 0.25, 1e-9);
  EXPECT_NEAR(b.max, 1.0, 1e-9);
}

TEST(Scheduler, UniformPolicyLiesBetweenBounds) {
  const Imc m = fast_or_slow();
  const Bounds b = absorption_time_bounds(m);
  const CtmcExtraction e = to_ctmc(m, NondetPolicy::kUniform);
  const double uniform =
      markov::expected_absorption_time_from_initial(e.ctmc);
  EXPECT_GE(uniform, b.min - 1e-9);
  EXPECT_LE(uniform, b.max + 1e-9);
  EXPECT_NEAR(uniform, 0.5 * 0.25 + 0.5 * 1.0, 1e-9);
}

TEST(Scheduler, DeterministicModelHasTightBounds) {
  Imc m;
  m.add_states(3);
  m.add_markovian(0, 2.0, 1);
  m.add_interactive(1, "i", 2);
  const Bounds b = absorption_time_bounds(m);
  EXPECT_NEAR(b.min, b.max, 1e-9);
  EXPECT_NEAR(b.min, 0.5, 1e-9);
}

TEST(Scheduler, ReachabilityBounds) {
  // Decision: go to target directly, or to a rate race that reaches the
  // target with probability 1/3.
  Imc m;
  m.add_states(4);
  m.add_interactive(0, "i", 1);  // decision A: certain
  m.add_interactive(0, "i", 2);  // decision B: race
  m.add_markovian(2, 1.0, 1);
  m.add_markovian(2, 2.0, 3);
  std::vector<bool> target(4, false);
  target[1] = true;
  const Bounds b = reachability_bounds(m, target);
  EXPECT_NEAR(b.max, 1.0, 1e-9);
  EXPECT_NEAR(b.min, 1.0 / 3.0, 1e-9);
}

TEST(Scheduler, AvoidableAbsorptionGivesInfiniteMax) {
  // The decision at state 0: delay to the absorbing state 3, or delay back
  // to the decision — a scheduler that always picks the loop never absorbs.
  Imc k;
  k.add_states(4);
  k.add_interactive(0, "i", 1);
  k.add_interactive(0, "i", 2);
  k.add_markovian(1, 2.0, 3);  // absorb at 3
  k.add_markovian(2, 1.0, 0);  // recurrent loop back to the decision
  const Bounds b = absorption_time_bounds(k);
  EXPECT_NEAR(b.min, 0.5, 1e-9);
  EXPECT_TRUE(std::isinf(b.max));
}

TEST(Scheduler, UnreachableAbsorptionGivesInfiniteBoth) {
  Imc m;
  m.add_states(2);
  m.add_markovian(0, 1.0, 1);
  m.add_markovian(1, 1.0, 0);
  const Bounds b = absorption_time_bounds(m);
  EXPECT_TRUE(std::isinf(b.min));
  EXPECT_TRUE(std::isinf(b.max));
}

TEST(Scheduler, ExtractedSchedulerAchievesBound) {
  const Imc m = fast_or_slow();
  const Bounds b = absorption_time_bounds(m);
  // Apply the time-optimal and worst-case schedulers; solving the induced
  // deterministic chain must reproduce the respective bound exactly.
  const Imc best = apply_scheduler(m, extract_time_scheduler(m, false));
  const Imc worst = apply_scheduler(m, extract_time_scheduler(m, true));
  const auto eb = to_ctmc(best);
  const auto ew = to_ctmc(worst);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(eb.ctmc), b.min,
              1e-9);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(ew.ctmc), b.max,
              1e-9);
}

TEST(Scheduler, AppliedSchedulerIsDeterministic) {
  const Imc m = fast_or_slow();
  const Imc d = apply_scheduler(m, extract_time_scheduler(m, false));
  for (StateId s = 0; s < d.num_states(); ++s) {
    EXPECT_LE(d.interactive(s).size(), 1u);
  }
  // A deterministic IMC extracts without a policy.
  EXPECT_NO_THROW((void)to_ctmc(d));
}

TEST(Scheduler, ApplySchedulerValidation) {
  Imc m;
  m.add_states(2);
  m.add_interactive(0, "i", 1);
  EXPECT_THROW((void)apply_scheduler(m, Scheduler{}),
               std::invalid_argument);
  EXPECT_THROW((void)apply_scheduler(m, Scheduler{5, 0}),
               std::invalid_argument);
}

TEST(Scheduler, SizeMismatchThrows) {
  Imc m;
  m.add_states(2);
  EXPECT_THROW((void)reachability_bounds(m, {true}), std::invalid_argument);
}

TEST(Scheduler, EmptyImc) {
  Imc m;
  const Bounds b = absorption_time_bounds(m);
  EXPECT_DOUBLE_EQ(b.min, 0.0);
  EXPECT_DOUBLE_EQ(b.max, 0.0);
}

// --- exhaustive property test ----------------------------------------------
//
// On small random IMCs, every memoryless scheduler can be enumerated; the
// interval bounds must bracket the exact value each one induces, for both
// reachability probability and expected absorption time (infinite values
// included).

// Deterministic random IMC: state n-1 is absorbing, interactive edges go
// strictly upward (so no scheduler can close a zero-delay cycle), Markovian
// edges may go anywhere else, so some schedulers can diverge.
Imc random_imc(std::mt19937& rng, std::size_t n) {
  const auto pick = [&](std::uint32_t k) {
    return static_cast<std::uint32_t>(rng() % k);
  };
  Imc m;
  m.add_states(n);
  for (StateId s = 0; s + 1 < n; ++s) {
    const bool decision = s + 1 < n - 1 ? pick(2) == 0 : pick(3) == 0;
    if (decision) {
      const std::uint32_t span = static_cast<std::uint32_t>(n - 1 - s);
      const std::size_t choices = 1 + pick(2);
      for (std::size_t c = 0; c < choices; ++c) {
        m.add_interactive(s, "a", s + 1 + pick(span));
      }
      if (pick(2) == 0) {
        // A Markovian edge that maximal progress must ignore.
        m.add_markovian(s, 1.0 + pick(3), pick(static_cast<std::uint32_t>(n)));
      }
    } else {
      const std::size_t edges = 1 + pick(2);
      for (std::size_t e = 0; e < edges; ++e) {
        StateId dst = pick(static_cast<std::uint32_t>(n));
        if (dst == s) {
          dst = n - 1;
        }
        m.add_markovian(s, 0.5 + 0.5 * pick(5), dst);
      }
    }
  }
  return m;
}

// (reach probability of `target`, expected absorption time) induced by one
// scheduler, both taken from the IMC's initial distribution.
std::pair<double, double> scheduler_value(const Imc& m, const Scheduler& sc,
                                          const std::vector<bool>& target) {
  const CtmcExtraction e = to_ctmc(apply_scheduler(m, sc));
  std::vector<bool> ctmc_target(e.ctmc.num_states(), false);
  for (std::size_t cs = 0; cs < e.imc_state_of.size(); ++cs) {
    ctmc_target[cs] = target[e.imc_state_of[cs]];
  }
  const std::vector<double> reach =
      markov::reachability_probability(e.ctmc, ctmc_target);
  const std::vector<double> pi0 = e.ctmc.initial_distribution();
  double p = 0.0;
  for (std::size_t cs = 0; cs < pi0.size(); ++cs) {
    p += pi0[cs] * reach[cs];
  }
  const double t = markov::expected_absorption_time_from_initial(e.ctmc);
  return {p, t};
}

TEST(Scheduler, BoundsBracketEveryMemorylessScheduler) {
  constexpr double kSlack = 1e-7;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(seed);
    const std::size_t n = 3 + rng() % 4;  // 3..6 states
    const Imc m = random_imc(rng, n);
    std::vector<bool> target(n, false);
    target[n - 1] = true;
    const Bounds reach = reachability_bounds(m, target);
    const Bounds time = absorption_time_bounds(m);

    // Mixed-radix enumeration of every memoryless scheduler.
    std::vector<std::size_t> radix(n, 1);
    std::size_t total = 1;
    for (StateId s = 0; s < n; ++s) {
      radix[s] = std::max<std::size_t>(1, m.interactive(s).size());
      total *= radix[s];
    }
    ASSERT_LE(total, 64u) << "seed " << seed;
    double best_p = 1.0, worst_p = 0.0, best_t = 1e300, worst_t = 0.0;
    for (std::size_t code = 0; code < total; ++code) {
      Scheduler sc(n, 0);
      std::size_t rest = code;
      for (StateId s = 0; s < n; ++s) {
        sc[s] = rest % radix[s];
        rest /= radix[s];
      }
      const auto [p, t] = scheduler_value(m, sc, target);
      EXPECT_GE(p, reach.min - kSlack) << "seed " << seed << " code " << code;
      EXPECT_LE(p, reach.max + kSlack) << "seed " << seed << " code " << code;
      EXPECT_GE(t, time.min - kSlack) << "seed " << seed << " code " << code;
      if (std::isinf(t)) {
        EXPECT_TRUE(std::isinf(time.max)) << "seed " << seed << " code "
                                          << code;
      } else {
        EXPECT_LE(t, time.max + kSlack) << "seed " << seed << " code "
                                        << code;
      }
      best_p = std::min(best_p, p);
      worst_p = std::max(worst_p, p);
      best_t = std::min(best_t, t);
      worst_t = std::max(worst_t, std::isinf(t) ? 1e300 : t);
    }
    // The bounds are attained by memoryless schedulers, so the envelope of
    // the enumeration must touch them (not merely sit inside).
    EXPECT_NEAR(best_p, reach.min, kSlack) << "seed " << seed;
    EXPECT_NEAR(worst_p, reach.max, kSlack) << "seed " << seed;
    EXPECT_NEAR(best_t, time.min, kSlack) << "seed " << seed;
    if (!std::isinf(time.max)) {
      EXPECT_NEAR(worst_t, time.max, kSlack) << "seed " << seed;
    }
  }
}

}  // namespace
