// Tests for the generate–minimise–compose pipeline (compose/plan and its
// reduction entry points in bisim/reduction): planner determinism and
// fallback provenance, byte-identity of the planned and flat strategies,
// the peak-intermediate bound on the 3-node MESI case study (the F8
// compositional exhibit, gated here in CI), the bounded minimisation cache
// with its plan-keyed subtree tier, and the algebraic property that
// minimising components before composing is branching-equivalent to
// composing first.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bisim/equivalence.hpp"
#include "bisim/reduction.hpp"
#include "compose/pipeline.hpp"
#include "compose/plan.hpp"
#include "core/flow.hpp"
#include "explore/engine.hpp"
#include "explore/lts_stream.hpp"
#include "explore/oracle.hpp"
#include "fame/coherence_n.hpp"
#include "fame/mpi.hpp"
#include "fame/topology.hpp"
#include "imc/scheduler.hpp"
#include "lts/lts.hpp"
#include "noc/mesh.hpp"
#include "noc/perf.hpp"
#include "proc/parser.hpp"
#include "proc/process.hpp"
#include "xstream/queue_model.hpp"

namespace {

using namespace multival;

std::string serialized(const lts::Lts& l) {
  std::ostringstream os;
  explore::write_lts_stream(os, l);
  return std::move(os).str();
}

std::shared_ptr<const proc::Program> parse_shared(const std::string& text) {
  return std::make_shared<const proc::Program>(proc::parse_program(text));
}

// ------------------------------------------------------------- the planner --

TEST(Planner, DeterministicOverReruns) {
  const auto p = std::make_shared<const proc::Program>(
      fame::coherence_system_n_program(fame::Protocol::kMesi, 3));
  const compose::Plan a = compose::plan_program(p, "SystemN");
  const compose::Plan b = compose::plan_program(p, "SystemN");
  EXPECT_TRUE(a.planned);
  EXPECT_EQ(a.grammar, b.grammar);
  EXPECT_EQ(a.components, b.components);
  EXPECT_GE(a.components.size(), 4u);  // 3 caches + directory + observer
}

TEST(Planner, SequentialTermFallsBackWithReason) {
  const auto p = parse_shared("process P := A ; B ; stop endproc");
  const compose::Plan plan = compose::plan_program(p, "P");
  EXPECT_FALSE(plan.planned);
  EXPECT_FALSE(plan.fallback_reason.empty());
  ASSERT_NE(plan.root, nullptr);
  // The fallback still evaluates, through the same normal form as flat.
  const compose::PlanResult r = compose::evaluate_plan(plan);
  const compose::PlanResult flat =
      compose::flat_reference(p, proc::call("P", {}));
  EXPECT_EQ(serialized(r.lts), serialized(flat.lts));
}

TEST(Planner, FreeInterleavingOfSharedGateFallsBack) {
  // G is in both alphabets but not synchronised: reassociation with
  // alphabetised sync sets cannot express the free interleaving.
  const auto p = parse_shared(R"(
    process A := G ; S ; A endproc
    process B := G ; S ; B endproc
    process Sys := A |[S]| B endproc
  )");
  const compose::Plan plan = compose::plan_program(p, "Sys");
  EXPECT_FALSE(plan.planned);
  EXPECT_NE(plan.fallback_reason.find("interleaves freely"),
            std::string::npos);
  const compose::PlanResult r = compose::evaluate_plan(plan);
  const compose::PlanResult flat =
      compose::flat_reference(p, proc::call("Sys", {}));
  EXPECT_EQ(serialized(r.lts), serialized(flat.lts));
}

TEST(Planner, DuplicateHideFallsBack) {
  const auto p = parse_shared(R"(
    process A := G ; A endproc
    process B := G ; B endproc
    process Sys := hide G in ((hide G in A) |[S]| B) endproc
  )");
  const compose::Plan plan = compose::plan_program(p, "Sys");
  EXPECT_FALSE(plan.planned);
  EXPECT_NE(plan.fallback_reason.find("hidden more than once"),
            std::string::npos);
}

// --------------------------------------------- planned == flat, peak bound --

TEST(Planner, Mesi3NodePlannedMatchesFlatWithBoundedPeak) {
  const auto p = std::make_shared<const proc::Program>(
      fame::coherence_system_n_program(fame::Protocol::kMesi, 3));
  const compose::PlanOptions opts;
  const compose::Plan plan = compose::plan_program(p, "SystemN", opts);
  ASSERT_TRUE(plan.planned) << plan.fallback_reason;
  const compose::PlanResult planned = compose::evaluate_plan(plan, opts);
  const compose::PlanResult flat =
      compose::flat_reference(p, proc::call("SystemN", {}), opts);

  // The acceptance gate of the compositional pipeline: byte-identical
  // results, peak intermediate within 4x of the final minimal LTS.
  EXPECT_EQ(serialized(planned.lts), serialized(flat.lts));
  EXPECT_GT(planned.lts.num_states(), 0u);
  EXPECT_LE(planned.stats.peak_states, 4 * planned.lts.num_states());
  // And the planned peak must actually improve on the monolithic peak.
  EXPECT_LT(planned.stats.peak_states, flat.stats.peak_states);
}

TEST(Planner, Mesh3x3PlannedMatchesFlat) {
  const auto p = std::make_shared<const proc::Program>(
      noc::single_packet_program(0, 8, /*hide_links=*/true,
                                 noc::MeshDims{3, 3}));
  const compose::PlanOptions opts;
  const compose::Plan plan = compose::plan_program(p, "Scenario", opts);
  const compose::PlanResult planned = compose::evaluate_plan(plan, opts);
  const compose::PlanResult flat =
      compose::flat_reference(p, proc::call("Scenario", {}), opts);
  EXPECT_EQ(serialized(planned.lts), serialized(flat.lts));
  EXPECT_LE(planned.stats.peak_states, 4 * planned.lts.num_states());
}

// ---------------------------------------------------- static bound routing --

TEST(Planner, XstreamDrainIsStaticallySkipped) {
  // The drain scenario's pop side owes credits without a local ceiling, so
  // generating it standalone can only grind to max_component_states and
  // then take the runtime monolithic fallback.  The static bound analysis
  // proves this before any state exists: the plan must arrive as a
  // monolithic fallback with "static skip (MV042)" provenance, and the
  // evaluation must never record the runtime fallback step.
  xstream::QueueConfig cfg;
  cfg.capacity = 2;
  cfg.max_value = 0;
  const auto p = std::make_shared<const proc::Program>(
      xstream::drain_scenario_program(cfg, 3));
  const compose::PlanOptions opts;
  const compose::Plan plan = compose::plan_program(p, "DrainScenario", opts);
  EXPECT_FALSE(plan.planned);
  ASSERT_FALSE(plan.static_skips.empty());
  EXPECT_NE(plan.static_skips[0].find("static skip (MV042)"),
            std::string::npos);
  EXPECT_NE(plan.static_skips[0].find("PopSide"), std::string::npos);
  EXPECT_NE(plan.fallback_reason.find("MV042"), std::string::npos);

  const compose::PlanResult planned = compose::evaluate_plan(plan, opts);
  bool saw_static_skip = false;
  for (const compose::StepStat& s : planned.stats.steps) {
    if (s.description.find("static skip (MV042)") != std::string::npos) {
      saw_static_skip = true;
    }
    EXPECT_EQ(s.description.find("monolithic fallback"), std::string::npos)
        << "runtime fallback fired despite the static route-around: "
        << s.description;
  }
  EXPECT_TRUE(saw_static_skip);

  // The static detour preserves the byte-identity contract.
  const compose::PlanResult flat =
      compose::flat_reference(p, proc::call("DrainScenario", {}), opts);
  EXPECT_EQ(serialized(planned.lts), serialized(flat.lts));
}

TEST(Planner, ComponentBoundsAreRecorded) {
  const auto p = std::make_shared<const proc::Program>(
      fame::coherence_system_n_program(fame::Protocol::kMesi, 3));
  const compose::Plan plan = compose::plan_program(p, "SystemN");
  ASSERT_TRUE(plan.planned) << plan.fallback_reason;
  ASSERT_EQ(plan.component_bounds.size(), plan.components.size());
  for (const std::uint64_t b : plan.component_bounds) {
    EXPECT_GT(b, 0u);
    EXPECT_LT(b, compose::PlanOptions{}.max_component_states);
  }
}

// ------------------------------------------------------ reduction entries --

TEST(Reduction, TauCompressContractsInertChains) {
  lts::Lts l;
  l.add_states(5);
  l.add_transition(0, "a", 1);
  l.add_transition(1, "i", 2);
  l.add_transition(2, "i", 3);
  l.add_transition(3, "b", 4);
  const lts::Lts c = bisim::tau_compress(l);
  EXPECT_EQ(c.num_states(), 3u);  // 0, {1,2,3}, 4
  EXPECT_TRUE(bisim::equivalent(l, c,
                                bisim::Equivalence::kDivergenceBranching));
}

TEST(Reduction, TauCompressKeepsDivergence) {
  lts::Lts l;
  l.add_states(3);
  l.add_transition(0, "a", 1);
  l.add_transition(1, "i", 2);
  l.add_transition(2, "i", 1);  // inert tau cycle: a livelock
  const lts::Lts c = bisim::tau_compress(l);
  EXPECT_LT(c.num_states(), l.num_states());
  bool has_tau_self_loop = false;
  for (const lts::Transition& t : c.all_transitions()) {
    has_tau_self_loop =
        has_tau_self_loop || (t.action == 0 && t.dst == t.src);
  }
  EXPECT_TRUE(has_tau_self_loop);
  EXPECT_TRUE(bisim::equivalent(l, c,
                                bisim::Equivalence::kDivergenceBranching));
}

TEST(Reduction, CanonicalFormIsIsomorphismInvariant) {
  // The same behaviour built with two different state numberings and label
  // interning orders must canonicalise to identical bytes.
  lts::Lts a;
  a.add_states(3);
  a.add_transition(0, "x", 1);
  a.add_transition(0, "y", 2);
  a.add_transition(1, "x", 0);
  a.add_transition(2, "y", 0);

  lts::Lts b;  // states renamed 0->0, 1<->2; labels interned y first
  b.add_states(3);
  b.add_transition(0, "y", 1);
  b.add_transition(1, "y", 0);
  b.add_transition(0, "x", 2);
  b.add_transition(2, "x", 0);

  EXPECT_EQ(serialized(bisim::canonical_form(a)),
            serialized(bisim::canonical_form(b)));
}

TEST(Reduction, OracleTauCompressMatchesOfflinePass) {
  const auto program = parse_shared(R"(
    process Walk := STEP ; STEP ; STEP ; DONE ; Walk endproc
    process P := hide STEP in Walk endproc
  )");
  const explore::ExploreResult plain =
      explore::explore(*explore::proc_oracle(program, "P"));
  const explore::ExploreResult compressed = explore::explore(
      *explore::tau_compress(explore::proc_oracle(program, "P")));
  EXPECT_LT(compressed.lts.num_states(), plain.lts.num_states());
  EXPECT_TRUE(bisim::equivalent(
      plain.lts, compressed.lts,
      bisim::Equivalence::kDivergenceBranching));
}

// ------------------------------------------------------------- the caches --

TEST(MinimizeCache, LruEvictsUnderByteBudget) {
  compose::LruMinimizeCache cache(/*capacity_bytes=*/4096);
  std::vector<lts::Lts> inputs;
  for (int k = 0; k < 6; ++k) {
    lts::Lts l;
    l.add_states(64);
    for (lts::StateId s = 0; s + 1 < 64; ++s) {
      l.add_transition(s, "g" + std::to_string(k), s + 1);
    }
    inputs.push_back(std::move(l));
  }
  const auto e = bisim::Equivalence::kDivergenceBranching;
  for (const lts::Lts& l : inputs) {
    EXPECT_FALSE(cache.lookup(l, e).has_value());
    cache.store(l, e, bisim::canonical_minimized(l, e));
  }
  const compose::LruMinimizeCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 6u);
  EXPECT_EQ(s.insertions, 6u);
  EXPECT_GT(s.evictions, 0u);           // the budget cannot hold all six
  EXPECT_LT(cache.entries(), 6u);
  EXPECT_LE(cache.bytes(), 4096u);
  // The most recent entry survives; the oldest was evicted.
  EXPECT_TRUE(cache.lookup(inputs.back(), e).has_value());
  EXPECT_FALSE(cache.lookup(inputs.front(), e).has_value());
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(MinimizeCache, PlanSubtreeKeysSkipRegeneration) {
  const auto p = std::make_shared<const proc::Program>(
      fame::coherence_system_n_program(fame::Protocol::kMsi, 3));
  const compose::PlanOptions opts;
  const compose::Plan plan = compose::plan_program(p, "SystemN", opts);
  ASSERT_TRUE(plan.planned);

  compose::LruMinimizeCache cache;
  const compose::PlanResult first = compose::evaluate_plan(plan, opts, &cache);
  const compose::Plan replan = compose::plan_program(p, "SystemN", opts);
  const compose::PlanResult second =
      compose::evaluate_plan(replan, opts, &cache);

  EXPECT_EQ(serialized(first.lts), serialized(second.lts));
  // The re-plan resolves its root from the subtree tier: no generation, a
  // single cached step, and the cache reports the hit.
  ASSERT_FALSE(second.stats.steps.empty());
  bool subtree_hit = false;
  for (const auto& step : second.stats.steps) {
    subtree_hit = subtree_hit || step.description.find("subtree cached") !=
                                     std::string::npos;
  }
  EXPECT_TRUE(subtree_hit);
  EXPECT_LT(second.stats.steps.size(), first.stats.steps.size());
  EXPECT_GT(cache.stats().hits, 0u);
}

// ------------------------------------------- the congruence property test --

lts::Lts random_component(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<lts::StateId> state(0, 7);
  std::uniform_int_distribution<int> label(0, 3);
  lts::Lts l;
  l.add_states(8);
  // A spine keeps every state reachable; random chords add branching,
  // nondeterminism and tau transitions ("i" when label(rng) == 3).
  const char* names[] = {"G0", "G1", "G2", "i"};
  for (lts::StateId s = 0; s + 1 < 8; ++s) {
    l.add_transition(s, names[label(rng)], s + 1);
  }
  for (int k = 0; k < 12; ++k) {
    l.add_transition(state(rng), names[label(rng)], state(rng));
  }
  return l;
}

TEST(PlanProperty, MinimizeThenComposeMatchesComposeThenMinimize) {
  const auto e = bisim::Equivalence::kDivergenceBranching;
  for (std::uint32_t seed = 0; seed < 24; ++seed) {
    const lts::Lts a = random_component(seed * 2 + 1);
    const lts::Lts b = random_component(seed * 2 + 2);
    const std::vector<std::string> sync = {"G0", "G1", "G2"};

    // Compositional: minimise each component, compose, minimise again.
    const compose::NodePtr early = compose::minimize_here(
        compose::compose2(
            compose::minimize_here(compose::leaf(a, "a"), e), sync,
            compose::minimize_here(compose::leaf(b, "b"), e)),
        e);
    // Monolithic: compose raw, minimise once at the end.
    const compose::NodePtr late = compose::minimize_here(
        compose::compose2(compose::leaf(a, "a"), sync,
                          compose::leaf(b, "b")),
        e);

    const lts::Lts r_early =
        compose::evaluate(early, /*with_minimization=*/true);
    const lts::Lts r_late =
        compose::evaluate(late, /*with_minimization=*/true);
    EXPECT_TRUE(bisim::equivalent(r_early, r_late, e))
        << "seed " << seed << ": minimise-then-compose diverged from "
        << "compose-then-minimise";
    // And both canonicalise to the same bytes (the pipeline's invariant).
    EXPECT_EQ(serialized(bisim::canonical_minimized(r_early, e)),
              serialized(bisim::canonical_minimized(r_late, e)));
  }
}

// --------------------------------------------------- golden solver values --

TEST(PlanGolden, FamePingPongBoundsSurviveTheReduction) {
  fame::PingPongConfig config;
  config.rounds = 2;
  const auto rates = fame::topology_rates(fame::Topology::kBus,
                                          {"M", "S0", "S1"}, 1.0);
  const imc::Bounds flat = imc::absorption_time_bounds(
      core::decorate_with_rates(
          fame::pingpong_lts(config, compose::Strategy::kFlat), rates));
  const imc::Bounds planned = imc::absorption_time_bounds(
      core::decorate_with_rates(
          fame::pingpong_lts(config, compose::Strategy::kPlanned), rates));
  EXPECT_GT(flat.max, 0.0);
  EXPECT_NEAR(planned.min, flat.min, 1e-9 * (1.0 + std::abs(flat.min)));
  EXPECT_NEAR(planned.max, flat.max, 1e-9 * (1.0 + std::abs(flat.max)));
}

TEST(PlanGolden, XstreamDrainBoundsSurviveTheReduction) {
  xstream::QueueConfig cfg;
  cfg.capacity = 2;
  cfg.max_value = 0;
  const std::map<std::string, double> rates = {
      {"PUSH", 1.0}, {"NET", 10.0}, {"CREDIT", 10.0}, {"POP", 2.0}};
  const imc::Bounds flat = imc::absorption_time_bounds(
      core::decorate_with_rates(
          xstream::drain_scenario_lts(cfg, 3, compose::Strategy::kFlat),
          rates));
  const imc::Bounds planned = imc::absorption_time_bounds(
      core::decorate_with_rates(
          xstream::drain_scenario_lts(cfg, 3, compose::Strategy::kPlanned),
          rates));
  EXPECT_GT(flat.max, 0.0);
  EXPECT_NEAR(planned.min, flat.min, 1e-9 * (1.0 + std::abs(flat.min)));
  EXPECT_NEAR(planned.max, flat.max, 1e-9 * (1.0 + std::abs(flat.max)));
}

TEST(PlanGolden, NocSinglePacketBoundsSurviveTheReduction) {
  const noc::MeshDims dims{2, 2};
  const auto table = noc::rate_table(noc::NocRates{}, dims);
  const imc::Bounds flat = imc::absorption_time_bounds(
      core::decorate_with_rates(
          noc::single_packet_lts(0, 3, /*hide_links=*/false, dims,
                                 compose::Strategy::kFlat),
          table));
  const imc::Bounds planned = imc::absorption_time_bounds(
      core::decorate_with_rates(
          noc::single_packet_lts(0, 3, /*hide_links=*/false, dims,
                                 compose::Strategy::kPlanned),
          table));
  EXPECT_GT(flat.max, 0.0);
  EXPECT_NEAR(planned.min, flat.min, 1e-9 * (1.0 + std::abs(flat.min)));
  EXPECT_NEAR(planned.max, flat.max, 1e-9 * (1.0 + std::abs(flat.max)));
}

}  // namespace
