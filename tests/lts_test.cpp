// Unit tests for the lts/ module: action table, LTS storage, analyses,
// composition operators and .aut I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "lts/action_table.hpp"
#include "lts/analysis.hpp"
#include "lts/lts.hpp"
#include "lts/lts_io.hpp"
#include "lts/product.hpp"

namespace {

using namespace multival::lts;

// --- ActionTable ---------------------------------------------------------

TEST(ActionTable, ReservedActions) {
  ActionTable t;
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(ActionTable::kTau), "i");
  EXPECT_EQ(t.name(ActionTable::kExit), "exit");
  EXPECT_TRUE(ActionTable::is_tau(ActionTable::kTau));
  EXPECT_TRUE(ActionTable::is_exit(ActionTable::kExit));
  EXPECT_FALSE(ActionTable::is_tau(ActionTable::kExit));
}

TEST(ActionTable, InternIsIdempotent) {
  ActionTable t;
  const ActionId a = t.intern("PUSH !1");
  const ActionId b = t.intern("PUSH !1");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.name(a), "PUSH !1");
  EXPECT_EQ(t.size(), 3u);
}

TEST(ActionTable, FindMissesUnknownLabels) {
  ActionTable t;
  EXPECT_FALSE(t.find("NOPE").has_value());
  t.intern("POP");
  ASSERT_TRUE(t.find("POP").has_value());
  EXPECT_EQ(t.name(*t.find("POP")), "POP");
}

TEST(ActionTable, EmptyLabelRejected) {
  ActionTable t;
  EXPECT_THROW(t.intern(""), std::invalid_argument);
}

TEST(ActionTable, NameOutOfRangeThrows) {
  ActionTable t;
  EXPECT_THROW((void)t.name(99), std::out_of_range);
}

TEST(ActionTable, VisibleLabelsExcludeTau) {
  ActionTable t;
  t.intern("A");
  t.intern("B");
  const auto vis = t.visible_labels();
  EXPECT_EQ(vis.size(), 3u);  // exit, A, B
  EXPECT_EQ(std::count(vis.begin(), vis.end(), "i"), 0);
}

// --- Lts storage ----------------------------------------------------------

TEST(Lts, AddStatesAndTransitions) {
  Lts l;
  const StateId s0 = l.add_state();
  const StateId s1 = l.add_state();
  l.add_transition(s0, "A", s1);
  l.add_transition(s1, "B", s0);
  EXPECT_EQ(l.num_states(), 2u);
  EXPECT_EQ(l.num_transitions(), 2u);
  ASSERT_EQ(l.out(s0).size(), 1u);
  EXPECT_EQ(l.actions().name(l.out(s0)[0].action), "A");
  EXPECT_EQ(l.out(s0)[0].dst, s1);
}

TEST(Lts, AddStatesBulk) {
  Lts l;
  const StateId first = l.add_states(5);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(l.num_states(), 5u);
  EXPECT_EQ(l.add_states(3), 5u);
}

TEST(Lts, BadStateRejected) {
  Lts l;
  l.add_state();
  EXPECT_THROW(l.add_transition(0, "A", 7), std::out_of_range);
  EXPECT_THROW(l.add_transition(7, "A", 0), std::out_of_range);
  EXPECT_THROW(l.set_initial_state(9), std::out_of_range);
  EXPECT_THROW((void)l.out(3), std::out_of_range);
}

TEST(Lts, BadActionIdRejected) {
  Lts l;
  l.add_state();
  EXPECT_THROW(l.add_transition(0, ActionId{42}, 0), std::out_of_range);
}

TEST(Lts, AllTransitionsFlatten) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 2);
  l.add_transition(2, "i", 0);
  const auto ts = l.all_transitions();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].src, 0u);
  EXPECT_EQ(ts[2].action, ActionTable::kTau);
}

TEST(Lts, PredecessorsInvertEdges) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 2);
  l.add_transition(1, "B", 2);
  const auto preds = l.predecessors();
  EXPECT_TRUE(preds[0].empty());
  ASSERT_EQ(preds[2].size(), 2u);
  EXPECT_EQ(preds[2][0].dst, 0u);  // predecessor stored in dst slot
  EXPECT_EQ(preds[2][1].dst, 1u);
}

TEST(Lts, DeadlockPredicate) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  EXPECT_FALSE(l.is_deadlock(0));
  EXPECT_TRUE(l.is_deadlock(1));
}

// --- Analyses --------------------------------------------------------------

TEST(Analysis, ReachabilityAndTrim) {
  Lts l;
  l.add_states(4);
  l.add_transition(0, "A", 1);
  l.add_transition(2, "B", 3);  // unreachable island
  l.set_initial_state(0);
  const auto seen = reachable_states(l);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_FALSE(seen[2]);
  const TrimResult t = trim(l);
  EXPECT_EQ(t.lts.num_states(), 2u);
  EXPECT_EQ(t.removed_states, 2u);
  EXPECT_EQ(t.old_to_new[2], kNoState);
  EXPECT_EQ(t.lts.num_transitions(), 1u);
}

TEST(Analysis, TrimPreservesInitialState) {
  Lts l;
  l.add_states(3);
  l.add_transition(1, "A", 2);
  l.set_initial_state(1);
  const TrimResult t = trim(l);
  EXPECT_EQ(t.lts.initial_state(), t.old_to_new[1]);
  EXPECT_EQ(t.lts.num_states(), 2u);
}

TEST(Analysis, DeadlockStates) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "B", 2);
  l.add_transition(1, "C", 0);
  const auto d = deadlock_states(l);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], 2u);
}

TEST(Analysis, SccOnCycle) {
  Lts l;
  l.add_states(4);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "A", 2);
  l.add_transition(2, "A", 0);
  l.add_transition(2, "A", 3);
  const SccResult r = strongly_connected_components(l);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.component_of[0], r.component_of[1]);
  EXPECT_EQ(r.component_of[1], r.component_of[2]);
  EXPECT_NE(r.component_of[0], r.component_of[3]);
}

TEST(Analysis, SccSingletons) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "A", 2);
  const SccResult r = strongly_connected_components(l);
  EXPECT_EQ(r.num_components, 3u);
}

TEST(Analysis, TauCycleDetection) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "i", 1);
  l.add_transition(1, "i", 0);
  l.add_transition(1, "A", 2);
  EXPECT_TRUE(has_tau_cycle(l));
  const auto div = divergent_states(l);
  EXPECT_EQ(div.size(), 2u);
}

TEST(Analysis, TauSelfLoopIsDivergent) {
  Lts l;
  l.add_states(1);
  l.add_transition(0, "i", 0);
  EXPECT_TRUE(has_tau_cycle(l));
}

TEST(Analysis, VisibleCycleIsNotLivelock) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 0);
  EXPECT_FALSE(has_tau_cycle(l));
}

TEST(Analysis, UnreachableTauCycleIgnored) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 0);
  l.add_transition(1, "i", 2);
  l.add_transition(2, "i", 1);
  l.set_initial_state(0);
  EXPECT_TRUE(divergent_states(l).empty());
}

TEST(Analysis, UsedActions) {
  Lts l;
  l.add_states(2);
  l.actions().intern("UNUSED");
  l.add_transition(0, "A", 1);
  const auto used = used_actions(l);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(l.actions().name(used[0]), "A");
}

// --- label_gate / hide / rename ---------------------------------------------

TEST(Product, LabelGate) {
  EXPECT_EQ(label_gate("PUSH !1 !2"), "PUSH");
  EXPECT_EQ(label_gate("POP"), "POP");
}

TEST(Product, HideMapsGateToTau) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "PUSH !1", 1);
  l.add_transition(1, "POP !1", 0);
  const std::vector<std::string> gates{"PUSH"};
  const Lts h = hide(l, gates);
  EXPECT_EQ(h.actions().name(h.out(0)[0].action), "i");
  EXPECT_EQ(h.actions().name(h.out(1)[0].action), "POP !1");
}

TEST(Product, HideAllBut) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "B", 1);
  const std::vector<std::string> keep{"A"};
  const Lts h = hide_all_but(l, keep);
  EXPECT_EQ(h.actions().name(h.out(0)[0].action), "A");
  EXPECT_EQ(h.actions().name(h.out(0)[1].action), "i");
}

TEST(Product, HideNeverTouchesExit) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "exit", 1);
  const std::vector<std::string> none{};
  const Lts h = hide_all_but(l, none);
  EXPECT_EQ(h.actions().name(h.out(0)[0].action), "exit");
}

TEST(Product, RenamePreservesOffers) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "SEND !3", 1);
  const Lts r = rename(l, {{"SEND", "PUT"}});
  EXPECT_EQ(r.actions().name(r.out(0)[0].action), "PUT !3");
}

// --- parallel composition ----------------------------------------------------

// A one-place buffer on gates IN/OUT.
Lts one_place_buffer(const std::string& in, const std::string& out) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, std::string_view(in), 1);
  l.add_transition(1, std::string_view(out), 0);
  l.set_initial_state(0);
  return l;
}

TEST(Product, PipelineSynchronises) {
  // IN -> [buf] -MID-> [buf] -> OUT, synchronising on MID.
  const Lts a = one_place_buffer("IN", "MID");
  const Lts b = one_place_buffer("MID", "OUT");
  const std::vector<std::string> sync{"MID"};
  const Lts p = parallel(a, b, sync);
  // Reachable states: 00, 10, 01, 11 -> 4 states.
  EXPECT_EQ(p.num_states(), 4u);
  // From 00 only IN is possible.
  ASSERT_EQ(p.out(p.initial_state()).size(), 1u);
  EXPECT_EQ(p.actions().name(p.out(p.initial_state())[0].action), "IN");
}

TEST(Product, InterleavingHasProductSize) {
  const Lts a = one_place_buffer("A1", "A2");
  const Lts b = one_place_buffer("B1", "B2");
  const Lts p = interleave(a, b);
  EXPECT_EQ(p.num_states(), 4u);
  EXPECT_EQ(p.num_transitions(), 8u);
}

TEST(Product, ValueMatchingOnSync) {
  Lts a;
  a.add_states(2);
  a.add_transition(0, "CH !1", 1);
  Lts b;
  b.add_states(3);
  b.add_transition(0, "CH !1", 1);
  b.add_transition(0, "CH !2", 2);
  const std::vector<std::string> sync{"CH"};
  const Lts p = parallel(a, b, sync);
  // Only CH !1 can synchronise.
  ASSERT_EQ(p.out(p.initial_state()).size(), 1u);
  EXPECT_EQ(p.actions().name(p.out(p.initial_state())[0].action), "CH !1");
}

TEST(Product, ExitAlwaysSynchronises) {
  Lts a;
  a.add_states(2);
  a.add_transition(0, "exit", 1);
  Lts b;
  b.add_states(2);
  b.add_transition(0, "exit", 1);
  const Lts p = interleave(a, b);
  ASSERT_EQ(p.out(p.initial_state()).size(), 1u);
  EXPECT_EQ(p.actions().name(p.out(p.initial_state())[0].action), "exit");
  EXPECT_EQ(p.num_states(), 2u);
}

TEST(Product, TauNeverSynchronises) {
  Lts a;
  a.add_states(2);
  a.add_transition(0, "i", 1);
  Lts b;
  b.add_states(2);
  b.add_transition(0, "i", 1);
  const Lts p = interleave(a, b);
  EXPECT_EQ(p.num_states(), 4u);
  EXPECT_EQ(p.num_transitions(), 4u);
}

TEST(Product, SyncWithoutPartnerBlocks) {
  Lts a;
  a.add_states(2);
  a.add_transition(0, "CH !1", 1);
  Lts b;
  b.add_states(2);
  b.add_transition(0, "CH !2", 1);
  const std::vector<std::string> sync{"CH"};
  const Lts p = parallel(a, b, sync);
  EXPECT_TRUE(p.is_deadlock(p.initial_state()));
  EXPECT_EQ(p.num_states(), 1u);
}

TEST(Product, ParallelAllFolds) {
  const Lts a = one_place_buffer("IN", "M1");
  const Lts b = one_place_buffer("M1", "M2");
  const Lts c = one_place_buffer("M2", "OUT");
  const std::vector<Lts> comps{a, b, c};
  const std::vector<std::string> sync{"M1", "M2"};
  const Lts p = parallel_all(comps, sync);
  EXPECT_EQ(p.num_states(), 8u);
  EXPECT_FALSE(p.is_deadlock(p.initial_state()));
}

TEST(Product, ParallelAllEmptyThrows) {
  const std::vector<Lts> comps;
  const std::vector<std::string> sync;
  EXPECT_THROW((void)parallel_all(comps, sync), std::invalid_argument);
}

// --- .aut I/O -----------------------------------------------------------------

TEST(Io, RoundTrip) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "PUSH !1", 1);
  l.add_transition(1, "i", 2);
  l.add_transition(2, "POP !1", 0);
  l.set_initial_state(0);
  const Lts r = from_aut(to_aut(l));
  EXPECT_EQ(r.num_states(), 3u);
  EXPECT_EQ(r.num_transitions(), 3u);
  EXPECT_EQ(r.initial_state(), 0u);
  EXPECT_EQ(r.actions().name(r.out(1)[0].action), "i");
  EXPECT_EQ(r.actions().name(r.out(2)[0].action), "POP !1");
}

TEST(Io, HeaderFormat) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  const std::string text = to_aut(l);
  EXPECT_NE(text.find("des (0, 1, 2)"), std::string::npos);
}

TEST(Io, ParsesUnquotedLabels) {
  const Lts l = from_aut("des (0, 1, 2)\n(0, hello, 1)\n");
  EXPECT_EQ(l.actions().name(l.out(0)[0].action), "hello");
}

TEST(Io, RejectsMissingHeader) {
  EXPECT_THROW((void)from_aut("(0, a, 1)\n"), std::runtime_error);
}

TEST(Io, RejectsOutOfRangeStates) {
  EXPECT_THROW((void)from_aut("des (0, 1, 2)\n(0, a, 5)\n"),
               std::runtime_error);
  EXPECT_THROW((void)from_aut("des (9, 0, 2)\n"), std::runtime_error);
}

TEST(Io, RejectsTruncatedInput) {
  EXPECT_THROW((void)from_aut("des (0, 2, 2)\n(0, a, 1)\n"),
               std::runtime_error);
}

TEST(Io, SkipsBlankLines) {
  const Lts l = from_aut("des (0, 1, 2)\n\n\n(0, \"a b\", 1)\n");
  EXPECT_EQ(l.num_transitions(), 1u);
  EXPECT_EQ(l.actions().name(l.out(0)[0].action), "a b");
}

}  // namespace
