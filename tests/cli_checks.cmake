# CLI hardening checks, run by ctest as:
#   cmake -DCLI=<path to multival_cli> -P cli_checks.cmake
#
# Every invocation below is malformed (unknown subcommand, unknown or
# incomplete flag, bad numeric argument, unknown client verb).  Each one
# must exit nonzero AND print the usage text to stderr.
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to multival_cli>")
endif()

function(expect_usage_failure)
  execute_process(COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "multival_cli ${ARGN}: expected nonzero exit, got 0")
  endif()
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR
      "multival_cli ${ARGN}: expected usage text on stderr, got:\n${err}")
  endif()
endfunction()

expect_usage_failure()                                    # no subcommand
expect_usage_failure(frobnicate)                          # unknown subcommand
expect_usage_failure(gen model.proc Entry --bogus)        # unknown flag
expect_usage_failure(explore model.proc Entry --no-such-flag)
expect_usage_failure(explore model.proc Entry -j banana)  # bad number
expect_usage_failure(lint)                                # nothing to lint
expect_usage_failure(lint --json)                         # still nothing
expect_usage_failure(lint model.proc --bogus)             # unknown flag
expect_usage_failure(lint model.proc --imc m.imc)         # two modes at once
expect_usage_failure(lint --builtin no-such-model)        # unknown builtin
expect_usage_failure(lint --fixed-delay banana)           # bad number
expect_usage_failure(lint --fixed-delay 1 --error-bound 2)
expect_usage_failure(serve --socket)                      # flag missing value
expect_usage_failure(serve --port 1234)                   # unknown flag
expect_usage_failure(serve --socket /tmp/x.sock --queue many)
expect_usage_failure(client --socket /tmp/x.sock frobnicate)
expect_usage_failure(client --socket /tmp/x.sock ping extra-arg)
expect_usage_failure(client --socket /tmp/x.sock check only-one-arg)
expect_usage_failure(dse --no-such-flag)                  # unknown flag
expect_usage_failure(dse --builtin no-such-sweep)         # unknown builtin
expect_usage_failure(dse -j banana)                       # bad number
expect_usage_failure(dse --repeat 0)                      # must be >= 1
expect_usage_failure(dse --spec)                          # flag missing value
expect_usage_failure(dse --spec a.sweep --builtin smoke)  # two sources at once
expect_usage_failure(xmas)                                # nothing to process
expect_usage_failure(xmas --lint)                         # still no input
expect_usage_failure(xmas f.xmas --builtin credit-loop)   # two inputs at once
expect_usage_failure(xmas --builtin no-such-fabric)       # unknown builtin
expect_usage_failure(xmas f.xmas --capacity 2)            # builtin-only flag
expect_usage_failure(xmas --builtin credit-loop --capacity 99)  # out of range
expect_usage_failure(xmas --builtin credit-loop --items banana) # bad number
expect_usage_failure(xmas --builtin credit-loop --lint --solve) # two modes
expect_usage_failure(xmas --builtin credit-loop --no-such-flag)
expect_usage_failure(xmas --builtin credit-loop -o)       # flag missing value

message(STATUS "all CLI usage checks passed")
