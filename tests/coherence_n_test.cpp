// Tests for the N-node FAME2 coherence generalisation.
#include <gtest/gtest.h>

#include "bisim/equivalence.hpp"
#include "fame/coherence.hpp"
#include "fame/coherence_n.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"

namespace {

using namespace multival;
using namespace multival::fame;

TEST(CoherenceN, NodesValidated) {
  EXPECT_THROW((void)coherence_system_n_lts(Protocol::kMsi, 1),
               std::invalid_argument);
  EXPECT_THROW((void)coherence_system_n_lts(Protocol::kMsi, 5),
               std::invalid_argument);
}

TEST(CoherenceN, TwoNodeSystemMatchesDedicatedModel) {
  // The N=2 instantiation must be weak-trace equivalent to the dedicated
  // 2-node model after hiding the internals — they implement the same
  // protocol.
  const lts::Lts general = coherence_system_n_lts(Protocol::kMsi, 2);
  const lts::Lts dedicated = coherence_system_lts(Protocol::kMsi);
  EXPECT_TRUE(
      bisim::equivalent(general, dedicated, bisim::Equivalence::kStrong));
}

class CoherenceNSweep
    : public ::testing::TestWithParam<std::tuple<Protocol, int>> {};

TEST_P(CoherenceNSweep, CoherentAndLive) {
  const auto [protocol, nodes] = GetParam();
  const lts::Lts l = coherence_system_n_lts(protocol, nodes);
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("ERR*"))))
      << to_string(protocol) << " " << nodes;
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()))
      << to_string(protocol) << " " << nodes;
  EXPECT_FALSE(lts::has_tau_cycle(l));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CoherenceNSweep,
    ::testing::Combine(::testing::Values(Protocol::kMsi, Protocol::kMesi),
                       ::testing::Values(2, 3)));

TEST(CoherenceN, ThreeNodeSharersAllInvalidatedOnWrite) {
  // With three nodes the write-upgrade path issues INV to *both* other
  // sharers; all three INV gates are exercised.
  const lts::Lts l = coherence_system_n_lts(Protocol::kMsi, 3);
  for (int j = 0; j < 3; ++j) {
    EXPECT_TRUE(mc::check(
        l, mc::can_do(mc::act("INV" + std::to_string(j) + "_M"))))
        << "node " << j;
  }
}

TEST(CoherenceN, MesiExclusiveOnlyWhenAlone) {
  const lts::Lts l = coherence_system_n_lts(Protocol::kMesi, 3);
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("GRS* !3"))));
  // The SWMR observer (never ERR) already guarantees E is granted only
  // when no other node holds a copy.
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("ERR*"))));
}

TEST(CoherenceN, StateSpaceGrowsWithNodes) {
  const std::size_t n2 =
      coherence_system_n_lts(Protocol::kMsi, 2).num_states();
  const std::size_t n3 =
      coherence_system_n_lts(Protocol::kMsi, 3).num_states();
  EXPECT_GT(n3, 2 * n2);
}

}  // namespace
