// Tests for sim/, compose/ and core/ — the integrated flows.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "compose/pipeline.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"
#include "phase/phase_type.hpp"
#include "proc/generator.hpp"
#include "proc/process.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace multival;
using namespace multival::proc;

// --- report helpers ------------------------------------------------------------

TEST(Report, TableFormats) {
  core::Table t("demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(core::Table("x", {}), std::invalid_argument);
}

TEST(Report, NumberFormats) {
  EXPECT_EQ(core::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(core::fmt(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_NE(core::fmt_sci(0.000012).find("e"), std::string::npos);
  EXPECT_EQ(core::fmt_ci(1.0, 0.25, 2), "1.00 (+/- 0.25)");
}

// --- simulator vs solver ----------------------------------------------------------

TEST(Simulator, SteadyRewardMatchesSolver) {
  markov::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 3.0);
  const std::vector<double> reward{0.0, 1.0};  // P[state 1]
  const auto pi = markov::steady_state(c);
  sim::SimOptions opts;
  opts.horizon = 4000.0;
  const sim::Estimate e = sim::simulate_steady_reward(c, reward, opts);
  EXPECT_NEAR(e.mean, pi[1], 0.02);
  EXPECT_GT(e.half_width, 0.0);
  EXPECT_TRUE(e.contains(pi[1]));
}

TEST(Simulator, ThroughputMatchesSolver) {
  markov::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 2.0, "go");
  c.add_transition(1, 0, 2.0, "back");
  const auto pi = markov::steady_state(c);
  const double exact = markov::throughput(c, pi, "go");
  sim::SimOptions opts;
  opts.horizon = 4000.0;
  const sim::Estimate e = sim::simulate_throughput(c, "go", opts);
  EXPECT_NEAR(e.mean, exact, 0.05);
}

TEST(Simulator, AbsorptionMatchesSolver) {
  markov::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 2.0);
  c.add_transition(1, 2, 2.0);
  const double exact = markov::expected_absorption_time_from_initial(c);
  sim::SimOptions opts;
  opts.replications = 4000;
  const sim::Estimate e = sim::simulate_absorption_time(c, opts);
  EXPECT_NEAR(e.mean, exact, 0.05);
  EXPECT_TRUE(e.contains(exact));
}

TEST(Simulator, TransientMatchesSolver) {
  markov::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  const double exact = 1.0 - std::exp(-0.7);
  sim::SimOptions opts;
  opts.replications = 5000;
  const sim::Estimate e =
      sim::simulate_transient_probability(c, {false, true}, 0.7, opts);
  EXPECT_NEAR(e.mean, exact, 0.03);
}

TEST(Simulator, DeterministicSeeding) {
  markov::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1.0);
  const std::vector<double> r{1.0, 0.0};
  const auto a = sim::simulate_steady_reward(c, r);
  const auto b = sim::simulate_steady_reward(c, r);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

// --- composition pipeline ------------------------------------------------------------

Program pipeline_program(int cells) {
  Program p;
  for (int i = 0; i < cells; ++i) {
    const std::string in = i == 0 ? "IN" : "M" + std::to_string(i);
    const std::string out =
        i == cells - 1 ? "OUT" : "M" + std::to_string(i + 1);
    p.define("Cell" + std::to_string(i), {},
             prefix(in, {accept("x", 0, 1)},
                    prefix(out, {emit(evar("x"))},
                           call("Cell" + std::to_string(i)))));
  }
  return p;
}

TEST(Pipeline, CompositionalEqualsMonolithic) {
  const Program p = pipeline_program(3);
  auto cell = [&p](int i) {
    return compose::leaf(
        [&p, i]() { return generate(p, "Cell" + std::to_string(i)); },
        "cell" + std::to_string(i));
  };
  // ((c0 |[M1]| c1) min) |[M2]| c2, hide M1 M2.
  auto tree = compose::hide_gates(
      {"M1", "M2"},
      compose::compose2(
          compose::minimize_here(compose::compose2(cell(0), {"M1"}, cell(1))),
          {"M2"}, cell(2)));
  const auto cmp = compose::compare_strategies(tree);
  EXPECT_TRUE(cmp.equivalent);
  EXPECT_LE(cmp.compositional.peak_states, cmp.monolithic.peak_states * 2);
  EXPECT_FALSE(cmp.compositional.steps.empty());
}

TEST(Pipeline, MinimizeNodeShrinks) {
  const Program p = pipeline_program(2);
  auto tree = compose::minimize_here(compose::hide_gates(
      {"M1"},
      compose::compose2(
          compose::leaf([&p]() { return generate(p, "Cell0"); }, "c0"),
          {"M1"},
          compose::leaf([&p]() { return generate(p, "Cell1"); }, "c1"))));
  compose::EvalStats stats;
  const lts::Lts reduced = compose::evaluate(tree, true, &stats);
  const lts::Lts full = compose::evaluate(tree, false);
  EXPECT_LT(reduced.num_states(), full.num_states());
}

TEST(Pipeline, NullNodesRejected) {
  EXPECT_THROW((void)compose::evaluate(nullptr, true), std::invalid_argument);
  EXPECT_THROW((void)compose::leaf(std::function<lts::Lts()>{}, "x"),
               std::invalid_argument);
}

// --- verification flow -----------------------------------------------------------------

TEST(Flow, VerifyHealthyModel) {
  Program p;
  p.define("Ping", {}, prefix("PING", prefix("PONG", call("Ping"))));
  const auto report = core::verify(generate(p, "Ping"),
                                   {{"ping possible", mc::can_do(mc::act("PING"))}});
  EXPECT_TRUE(report.all_hold());
  EXPECT_EQ(report.raw.states, 2u);
  EXPECT_NE(report.to_string().find("PASS"), std::string::npos);
}

TEST(Flow, VerifyFindsDeadlock) {
  Program p;
  p.define("Dead", {}, prefix("A", stop()));
  const auto report = core::verify(generate(p, "Dead"));
  EXPECT_FALSE(report.all_hold());
  EXPECT_NE(report.to_string().find("FAIL"), std::string::npos);
}

// --- performance flow --------------------------------------------------------------------

TEST(Flow, DecorateWithRatesMakesMarkovian) {
  Program p;
  p.define("Loop", {}, prefix("WORK", prefix("REST", call("Loop"))));
  const lts::Lts l = generate(p, "Loop");
  const imc::Imc m = core::decorate_with_rates(l, {{"WORK", 2.0},
                                                   {"REST", 1.0}});
  EXPECT_EQ(m.num_markovian(), 2u);
  EXPECT_EQ(m.num_interactive(), 0u);
  const auto closed = core::close_model(m);
  const auto pi = markov::steady_state(closed.ctmc);
  // Utilisation of WORK state: rest-rate/(sum), classic two-state formula.
  EXPECT_NEAR(markov::throughput(closed.ctmc, pi, "WORK*"),
              markov::throughput(closed.ctmc, pi, "REST*"), 1e-9);
}

TEST(Flow, DecorateRejectsBadRate) {
  lts::Lts l;
  l.add_state();
  EXPECT_THROW((void)core::decorate_with_rates(l, {{"A", -1.0}}),
               std::invalid_argument);
}

TEST(Flow, InsertDelaysMatchesDirectDecoration) {
  // M/M/1/1: arrivals at rate 1 (delay between arrivals), service rate 2.
  // Built constraint-orientedly and checked against the closed form.
  Program p;
  p.define("Station", {},
           prefix("ARRIVE_END",
                  prefix("SERVE_START", prefix("SERVE_END", call("Station")))));
  // ARRIVE_END is driven by an exponential(1) delay that restarts
  // immediately (its START is the same as the previous END... simplest:
  // drive arrivals by a dedicated clock process).
  Program clock;
  clock.define("Sys", {},
               par(call("Arrivals"), {"ARRIVE"}, call("Server")));
  clock.define("Arrivals", {},
               prefix("A_START", prefix("A_END", prefix("ARRIVE",
                                                        call("Arrivals")))));
  clock.define("Server", {},
               prefix("ARRIVE", prefix("S_START",
                                       prefix("S_END", call("Server")))));
  const lts::Lts l = generate(clock, "Sys");
  const std::vector<core::DelaySpec> delays{
      {"A_START", "A_END", phase::PhaseType::exponential(1.0)},
      {"S_START", "S_END", phase::PhaseType::exponential(2.0)},
  };
  const imc::Imc m = core::insert_delays(l, delays);
  const auto closed = core::close_model(m);
  // The arrival timer runs concurrently with service, so the lumped chain
  // has 3 states: (delaying, serving), (waiting, serving), (delaying, idle).
  // Balance gives pi = (2/7, 1/7, 4/7) and both long-run completion rates
  // equal 6/7 (one arrival per service).
  const auto pi = markov::steady_state(closed.ctmc);
  ASSERT_EQ(pi.size(), 3u);
  const double thr_arrivals = markov::throughput(closed.ctmc, pi, "A_END");
  const double thr_services = markov::throughput(closed.ctmc, pi, "S_END");
  EXPECT_NEAR(thr_arrivals, thr_services, 1e-9);
  EXPECT_NEAR(thr_services, 6.0 / 7.0, 1e-9);
}

TEST(Flow, CloseModelLumpsCycles) {
  Program p;
  p.define("Cycle", {},
           prefix("D1_START", prefix("D1_END",
                  prefix("D2_START", prefix("D2_END", call("Cycle"))))));
  const lts::Lts l = generate(p, "Cycle");
  // Distinct stage rates: the two phases stay distinguishable.
  const auto distinct = core::close_model(core::insert_delays(
      l, {{"D1_START", "D1_END", phase::PhaseType::exponential(3.0)},
          {"D2_START", "D2_END", phase::PhaseType::exponential(5.0)}}));
  EXPECT_EQ(distinct.ctmc.num_states(), 2u);
  const auto pi = markov::steady_state(distinct.ctmc);
  EXPECT_NEAR(*std::max_element(pi.begin(), pi.end()), 5.0 / 8.0, 1e-9);
  // Equal rates: rate-wise the cycle is lumpable, but the two delays carry
  // distinct measurement labels (D1_END / D2_END), which lumping preserves
  // by design — the stages stay distinguishable.
  const auto equal = core::close_model(core::insert_delays(
      l, {{"D1_START", "D1_END", phase::PhaseType::exponential(3.0)},
          {"D2_START", "D2_END", phase::PhaseType::exponential(3.0)}}));
  EXPECT_EQ(equal.ctmc.num_states(), 2u);
  EXPECT_LE(equal.stats.lumped_states, equal.stats.imc_states);
  // Without labels the same cycle collapses to one state.
  imc::Imc plain;
  plain.add_states(2);
  plain.add_markovian(0, 3.0, 1);
  plain.add_markovian(1, 3.0, 0);
  EXPECT_EQ(imc::minimize_imc(plain).quotient.num_states(), 1u);
}

TEST(Flow, ErlangDelayLatency) {
  // One-shot: START then Erlang-4(rate 8) delay then END then stop;
  // expected absorption time = 0.5.
  Program p;
  p.define("Once", {}, prefix("D_START", prefix("D_END", stop())));
  const std::vector<core::DelaySpec> delays{
      {"D_START", "D_END", phase::PhaseType::erlang(4, 8.0)},
  };
  const auto closed =
      core::close_model(core::insert_delays(generate(p, "Once"), delays));
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(closed.ctmc), 0.5,
              1e-9);
}

TEST(Flow, DecorateWithPhaseTypeErlangMean) {
  // A one-shot HOP transition with an Erlang-4 delay of mean 0.5.
  lts::Lts l;
  l.add_states(2);
  l.add_transition(0, "HOP", 1);
  const imc::Imc m = core::decorate_with_phase_type(
      l, {{"HOP", phase::PhaseType::erlang(4, 8.0)}});
  EXPECT_EQ(m.num_states(), 2u + 3u);  // 3 intermediate stages
  const auto closed = core::close_model(m);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(closed.ctmc),
              0.5, 1e-9);
}

TEST(Flow, DecorateWithPhaseTypeKeepsLabels) {
  lts::Lts l;
  l.add_states(2);
  l.add_transition(0, "HOP", 1);
  l.add_transition(1, "HOP", 0);
  const imc::Imc m = core::decorate_with_phase_type(
      l, {{"HOP", phase::PhaseType::erlang(2, 4.0)}});
  const auto closed = core::close_model(m);
  const auto pi = markov::steady_state(closed.ctmc);
  // One HOP completes every 0.5 time units on average.
  EXPECT_NEAR(markov::throughput(closed.ctmc, pi, "HOP"), 2.0, 1e-9);
}

TEST(Flow, DecorateWithPhaseTypeAgreesWithExponentialRates) {
  lts::Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 0);
  const auto via_pt = core::close_model(core::decorate_with_phase_type(
      l, {{"A", phase::PhaseType::exponential(2.0)},
          {"B", phase::PhaseType::exponential(3.0)}}));
  const auto via_rates = core::close_model(core::decorate_with_rates(
      l, {{"A", 2.0}, {"B", 3.0}}));
  const auto pi_pt = markov::steady_state(via_pt.ctmc);
  const auto pi_r = markov::steady_state(via_rates.ctmc);
  EXPECT_NEAR(markov::throughput(via_pt.ctmc, pi_pt, "A"),
              markov::throughput(via_rates.ctmc, pi_r, "A"), 1e-9);
}

TEST(Flow, DecorateWithPhaseTypeRejectsHyperexponential) {
  lts::Lts l;
  l.add_states(1);
  EXPECT_THROW(
      (void)core::decorate_with_phase_type(
          l, {{"A", phase::PhaseType::hyperexponential({0.5, 0.5},
                                                       {1.0, 2.0})}}),
      std::invalid_argument);
}

TEST(Flow, NondeterminismSurfacesInClose) {
  // Two competing hidden actions from the initial state -> rejected.
  lts::Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "B", 2);
  l.add_transition(1, "LOOPA", 1);
  l.add_transition(2, "LOOPB", 2);
  const imc::Imc m = core::decorate_with_rates(l, {{"LOOPA", 1.0},
                                                   {"LOOPB", 2.0}});
  EXPECT_THROW((void)core::close_model(m), imc::NondeterminismError);
  const auto closed = core::close_model(m, imc::NondetPolicy::kUniform);
  EXPECT_EQ(closed.ctmc.num_states(), 2u);
}

}  // namespace
