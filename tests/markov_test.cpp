// Unit and property tests for the markov/ module, cross-checked against
// closed-form results (two-state chains, birth-death chains, Erlang).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "markov/absorption.hpp"
#include "markov/ctmc.hpp"
#include "markov/sparse.hpp"
#include "markov/steady.hpp"
#include "markov/transient.hpp"

namespace {

using namespace multival::markov;

// --- SparseMatrix -----------------------------------------------------------

TEST(Sparse, FromTripletsSumsDuplicates) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      2, 2, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.num_nonzeros(), 2u);
  ASSERT_EQ(m.row(0).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(0)[0].value, 3.0);
  EXPECT_EQ(m.row(0)[0].col, 1u);
}

TEST(Sparse, OutOfRangeTripletThrows) {
  EXPECT_THROW((void)SparseMatrix::from_triplets(1, 1, {{0, 2, 1.0}}),
               std::out_of_range);
}

TEST(Sparse, MultiplyLeftAndRight) {
  // [[0,2],[3,0]]
  const SparseMatrix m =
      SparseMatrix::from_triplets(2, 2, {{0, 1, 2.0}, {1, 0, 3.0}});
  const std::vector<double> x{1.0, 10.0};
  const auto left = m.multiply_left(x);  // x*M = [30, 2]
  EXPECT_DOUBLE_EQ(left[0], 30.0);
  EXPECT_DOUBLE_EQ(left[1], 2.0);
  const auto right = m.multiply_right(x);  // M*x = [20, 3]
  EXPECT_DOUBLE_EQ(right[0], 20.0);
  EXPECT_DOUBLE_EQ(right[1], 3.0);
}

TEST(Sparse, MultiplySizeChecked) {
  const SparseMatrix m = SparseMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  const std::vector<double> bad{1.0};
  EXPECT_THROW((void)m.multiply_left(bad), std::invalid_argument);
  EXPECT_THROW((void)m.multiply_right(bad), std::invalid_argument);
}

TEST(Sparse, Transpose) {
  const SparseMatrix m =
      SparseMatrix::from_triplets(2, 3, {{0, 2, 4.0}, {1, 0, 5.0}});
  const SparseMatrix t = m.transpose();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cols(), 2u);
  ASSERT_EQ(t.row(2).size(), 1u);
  EXPECT_DOUBLE_EQ(t.row(2)[0].value, 4.0);
  EXPECT_EQ(t.row(2)[0].col, 0u);
}

// --- Ctmc basics -------------------------------------------------------------

TEST(CtmcTest, RatesValidated) {
  Ctmc c;
  c.add_states(2);
  EXPECT_THROW(c.add_transition(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_transition(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(c.add_transition(0, 5, 1.0), std::out_of_range);
}

TEST(CtmcTest, ExitRates) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 2.0);
  c.add_transition(0, 1, 3.0);
  const auto e = c.exit_rates();
  EXPECT_DOUBLE_EQ(e[0], 5.0);
  EXPECT_DOUBLE_EQ(e[1], 0.0);
  EXPECT_FALSE(c.is_absorbing(0));
  EXPECT_TRUE(c.is_absorbing(1));
}

TEST(CtmcTest, InitialDistribution) {
  Ctmc c;
  c.add_states(3);
  c.set_initial_state(2);
  const auto pi0 = c.initial_distribution();
  EXPECT_DOUBLE_EQ(pi0[2], 1.0);
  c.set_initial_distribution({0.5, 0.5, 0.0});
  EXPECT_DOUBLE_EQ(c.initial_distribution()[0], 0.5);
  EXPECT_THROW(c.set_initial_distribution({1.0}), std::invalid_argument);
  EXPECT_THROW(c.set_initial_distribution({0.4, 0.4, 0.4}),
               std::invalid_argument);
}

TEST(CtmcTest, UniformizedDtmcRowsSumToOne) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 4.0);
  c.add_transition(1, 0, 1.0);
  double lambda = 0.0;
  const SparseMatrix p = c.uniformized_dtmc(lambda);
  EXPECT_GE(lambda, 4.0);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (const Entry& e : p.row(r)) {
      sum += e.value;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

// --- steady state ---------------------------------------------------------------

TEST(Steady, TwoStateChain) {
  // 0 -a-> 1, 1 -b-> 0: pi = (b, a)/(a+b).
  const double a = 3.0;
  const double b = 1.0;
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, a);
  c.add_transition(1, 0, b);
  const auto pi = steady_state(c);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-9);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-9);
}

TEST(Steady, BirthDeathMatchesGeometric) {
  // M/M/1/4 with lambda=1, mu=2: pi_i = rho^i * (1-rho)/(1-rho^5).
  const double lambda = 1.0;
  const double mu = 2.0;
  const int k = 4;
  Ctmc c;
  c.add_states(k + 1);
  for (int i = 0; i < k; ++i) {
    c.add_transition(i, i + 1, lambda);
    c.add_transition(i + 1, i, mu);
  }
  const auto pi = steady_state(c);
  const double rho = lambda / mu;
  const double norm = (1 - rho) / (1 - std::pow(rho, k + 1));
  for (int i = 0; i <= k; ++i) {
    EXPECT_NEAR(pi[i], std::pow(rho, i) * norm, 1e-9) << "state " << i;
  }
}

TEST(Steady, SumsToOne) {
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 2, 2.0);
  c.add_transition(2, 0, 3.0);
  const auto pi = steady_state(c);
  double sum = 0.0;
  for (const double p : pi) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Steady, SelfLoopsAreNeutral) {
  Ctmc a;
  a.add_states(2);
  a.add_transition(0, 1, 2.0);
  a.add_transition(1, 0, 1.0);
  Ctmc b = a;
  b.add_transition(0, 0, 5.0);  // self-loop must not change steady state
  const auto pa = steady_state(a);
  const auto pb = steady_state(b);
  EXPECT_NEAR(pa[0], pb[0], 1e-9);
}

TEST(Steady, ReducibleChainSplitsMassAcrossBsccs) {
  // 0 -1-> 1 (absorbing), 0 -3-> 2 (absorbing): mass 1/4 and 3/4.
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(0, 2, 3.0);
  const auto pi = steady_state(c);
  EXPECT_NEAR(pi[0], 0.0, 1e-12);
  EXPECT_NEAR(pi[1], 0.25, 1e-9);
  EXPECT_NEAR(pi[2], 0.75, 1e-9);
}

TEST(Steady, BsccDecomposition) {
  Ctmc c;
  c.add_states(4);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 2, 1.0);
  c.add_transition(2, 1, 1.0);  // {1,2} bottom
  c.add_transition(0, 3, 1.0);  // {3} bottom (absorbing)
  const auto d = bscc_decomposition(c);
  EXPECT_EQ(d.component_of[1], d.component_of[2]);
  EXPECT_FALSE(d.is_bottom[d.component_of[0]]);
  EXPECT_TRUE(d.is_bottom[d.component_of[1]]);
  EXPECT_TRUE(d.is_bottom[d.component_of[3]]);
}

TEST(Steady, ReachabilityProbability) {
  // Fair race: 0 goes to 1 or 2 with equal rate; target {1}.
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 2.0);
  c.add_transition(0, 2, 2.0);
  const auto h = reachability_probability(c, {false, true, false});
  EXPECT_NEAR(h[0], 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 0.0);
}

TEST(Steady, EmptyChain) {
  Ctmc c;
  EXPECT_TRUE(steady_state(c).empty());
}

// --- rewards & throughput ----------------------------------------------------------

TEST(Rewards, ExpectedReward) {
  const std::vector<double> pi{0.25, 0.75};
  const std::vector<double> r{4.0, 8.0};
  EXPECT_DOUBLE_EQ(expected_reward(pi, r), 7.0);
}

TEST(Rewards, ThroughputByLabel) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 3.0, "serve");
  c.add_transition(1, 0, 1.0, "arrive");
  const auto pi = steady_state(c);
  // Flow balance: throughput(serve) == throughput(arrive).
  EXPECT_NEAR(throughput(c, pi, "serve"), throughput(c, pi, "arrive"), 1e-9);
  EXPECT_NEAR(throughput(c, pi, "serve"), pi[0] * 3.0, 1e-12);
  EXPECT_NEAR(throughput(c, pi, "*"), pi[0] * 3.0 + pi[1] * 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(throughput(c, pi, "nothing"), 0.0);
}

// --- transient ------------------------------------------------------------------------

TEST(Transient, PoissonWeightsNormalised) {
  for (const double lt : {0.0, 0.5, 3.0, 50.0, 400.0}) {
    const PoissonWeights w = poisson_weights(lt);
    double sum = 0.0;
    double mean = 0.0;
    for (std::size_t k = 0; k < w.weights.size(); ++k) {
      sum += w.weights[k];
      mean += static_cast<double>(w.left + k) * w.weights[k];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "lambda*t = " << lt;
    EXPECT_NEAR(mean, lt, 1e-6 * (1.0 + lt)) << "lambda*t = " << lt;
  }
}

TEST(Transient, TwoStateClosedForm) {
  // P(X(t)=1 | X(0)=0) = a/(a+b) * (1 - exp(-(a+b)t)).
  const double a = 2.0;
  const double b = 0.5;
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, a);
  c.add_transition(1, 0, b);
  for (const double t : {0.1, 0.5, 1.0, 3.0}) {
    const auto pi = transient_distribution(c, t);
    const double expect = a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(pi[1], expect, 1e-9) << "t = " << t;
  }
}

TEST(Transient, TimeZeroIsInitial) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  const auto pi = transient_distribution(c, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(Transient, ConvergesToSteadyState) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 2.0);
  const auto pi_t = transient_distribution(c, 200.0);
  const auto pi = steady_state(c);
  EXPECT_NEAR(pi_t[0], pi[0], 1e-8);
}

TEST(Transient, SetProbability) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  const double p = transient_probability(c, {false, true}, 1.0);
  EXPECT_NEAR(p, 1.0 - std::exp(-1.0), 1e-9);
}

TEST(Transient, NegativeTimeThrows) {
  Ctmc c;
  c.add_state();
  EXPECT_THROW((void)transient_distribution(c, -1.0), std::invalid_argument);
}

// --- absorption ------------------------------------------------------------------------

TEST(Absorption, ErlangChain) {
  // 0 -r-> 1 -r-> 2 (absorbing): expected time = 2/r.
  const double r = 4.0;
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, r);
  c.add_transition(1, 2, r);
  const auto t = expected_time_to_absorption(c);
  EXPECT_NEAR(t[0], 2.0 / r, 1e-9);
  EXPECT_NEAR(t[1], 1.0 / r, 1e-9);
  EXPECT_DOUBLE_EQ(t[2], 0.0);
  EXPECT_NEAR(expected_absorption_time_from_initial(c), 2.0 / r, 1e-9);
}

TEST(Absorption, BranchingChain) {
  // 0 branches: to absorbing 1 (rate 1) or to 2 (rate 1), 2 -2-> 1.
  // E[T] = 1/2 (sojourn at 0) + 1/2 * E[via 2] where E[via2] adds 1/2.
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(0, 2, 1.0);
  c.add_transition(2, 1, 2.0);
  const auto t = expected_time_to_absorption(c);
  EXPECT_NEAR(t[0], 0.5 + 0.5 * 0.5, 1e-9);
}

TEST(Absorption, UnreachableAbsorptionIsInfinite) {
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1.0);  // {0,1} recurrent, 2 isolated absorbing
  const auto t = expected_time_to_absorption(c);
  EXPECT_TRUE(std::isinf(t[0]));
  EXPECT_TRUE(std::isinf(t[1]));
  EXPECT_DOUBLE_EQ(t[2], 0.0);
}

TEST(Absorption, MeanFirstPassage) {
  // Cycle 0->1->2->0 with rate 1; time from 0 to first hit 2 is 2.
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 2, 1.0);
  c.add_transition(2, 0, 1.0);
  const auto t = mean_first_passage_time(c, {false, false, true});
  EXPECT_NEAR(t[0], 2.0, 1e-9);
  EXPECT_NEAR(t[1], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t[2], 0.0);
}

TEST(Absorption, ProbabilityByTime) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 2.0);
  EXPECT_NEAR(absorption_probability_by(c, 1.0), 1.0 - std::exp(-2.0), 1e-9);
  EXPECT_NEAR(absorption_probability_by(c, 0.0), 0.0, 1e-12);
}

TEST(Absorption, QuantileExponentialClosedForm) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 2.0);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(absorption_time_quantile(c, q), -std::log(1.0 - q) / 2.0,
                1e-6)
        << q;
  }
}

TEST(Absorption, QuantileMonotoneInQ) {
  Ctmc c;
  c.add_states(4);
  for (int i = 0; i < 3; ++i) {
    c.add_transition(i, i + 1, 1.5);
  }
  const double p50 = absorption_time_quantile(c, 0.5);
  const double p95 = absorption_time_quantile(c, 0.95);
  const double p99 = absorption_time_quantile(c, 0.99);
  EXPECT_LT(p50, p95);
  EXPECT_LT(p95, p99);
  // Mean lies between median and p99 for this right-skewed distribution.
  const double mean = expected_absorption_time_from_initial(c);
  EXPECT_GT(mean, p50 * 0.8);
  EXPECT_LT(mean, p99);
}

TEST(Absorption, QuantileValidation) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  EXPECT_THROW((void)absorption_time_quantile(c, 0.0), std::invalid_argument);
  EXPECT_THROW((void)absorption_time_quantile(c, 1.0), std::invalid_argument);
  Ctmc loop;
  loop.add_states(2);
  loop.add_transition(0, 1, 1.0);
  loop.add_transition(1, 0, 1.0);
  EXPECT_THROW((void)absorption_time_quantile(loop, 0.5), SolverFailure);
}

// --- property sweep: birth-death chains ----------------------------------------------

struct BdParam {
  double lambda;
  double mu;
  int capacity;
};

class BirthDeathProperty : public ::testing::TestWithParam<BdParam> {};

TEST_P(BirthDeathProperty, SolverMatchesClosedForm) {
  const auto [lambda, mu, k] = GetParam();
  Ctmc c;
  c.add_states(k + 1);
  for (int i = 0; i < k; ++i) {
    c.add_transition(i, i + 1, lambda, "arrive");
    c.add_transition(i + 1, i, mu, "serve");
  }
  const auto pi = steady_state(c);
  const double rho = lambda / mu;
  double norm = 0.0;
  for (int i = 0; i <= k; ++i) {
    norm += std::pow(rho, i);
  }
  for (int i = 0; i <= k; ++i) {
    EXPECT_NEAR(pi[i], std::pow(rho, i) / norm, 1e-8);
  }
  // Effective throughput identity: accepted arrivals == services.
  EXPECT_NEAR(throughput(c, pi, "arrive"), throughput(c, pi, "serve"), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, BirthDeathProperty,
    ::testing::Values(BdParam{0.5, 1.0, 3}, BdParam{1.0, 1.0, 5},
                      BdParam{2.0, 1.0, 4}, BdParam{0.9, 1.1, 8},
                      BdParam{5.0, 1.0, 2}, BdParam{0.1, 2.0, 6}));

// --- Fox-Glynn truncation and parallel determinism --------------------------

// Erlang-k completion probability by time t computed through uniformisation
// must match the analytic Poisson tail P[Poisson(r*t) >= k] to the requested
// epsilon, including for large lambda*t where the old per-weight cutoff of
// poisson_weights lost unbounded total mass.
double erlang_cdf(std::size_t k, double rt) {
  double cdf = 0.0;  // P[Poisson(rt) < k]
  for (std::size_t i = 0; i < k; ++i) {
    cdf += std::exp(static_cast<double>(i) * std::log(rt) - rt -
                    std::lgamma(static_cast<double>(i) + 1.0));
  }
  return 1.0 - cdf;
}

TEST(Transient, ErlangCdfLargeLambdaT) {
  for (const double rt : {1e2, 1e4}) {
    // k ~ rt so the CDF sits mid-range instead of saturating at 0 or 1.
    const auto k = static_cast<std::size_t>(rt);
    Ctmc c;
    c.add_states(k + 1);
    for (std::size_t i = 0; i < k; ++i) {
      c.add_transition(static_cast<MState>(i), static_cast<MState>(i + 1),
                       1.0);
    }
    std::vector<bool> target(k + 1, false);
    target[k] = true;
    const double got = bounded_reachability(c, target, rt, 1e-10);
    const double want = erlang_cdf(k, rt);
    EXPECT_GT(want, 0.3);
    EXPECT_LT(want, 0.7);
    EXPECT_NEAR(got, want, 1e-9) << "lambda*t = " << rt;
  }
}

TEST(Transient, PoissonWeightsTotalMassBound) {
  for (const double lt : {0.5, 3.0, 50.0, 1e4}) {
    const double eps = 1e-12;
    const PoissonWeights pw = poisson_weights(lt, eps);
    // The kept (normalised) weights must cover the analytic mass of the
    // kept index range up to eps: the dropped tails are bounded.
    double analytic = 0.0;
    for (std::size_t i = 0; i < pw.weights.size(); ++i) {
      const double k = static_cast<double>(pw.left + i);
      analytic += std::exp(k * std::log(lt) - lt - std::lgamma(k + 1.0));
    }
    EXPECT_GT(analytic, 1.0 - eps) << "lambda*t = " << lt;
  }
}

TEST(Transient, PoissonWeightsRejectsBadEpsilon) {
  EXPECT_THROW((void)poisson_weights(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)poisson_weights(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)poisson_weights(1.0, -1e-3), std::invalid_argument);
}

TEST(Sparse, ParallelMultiplyIsBitwiseDeterministic) {
  // Big enough to clear the serial threshold (kParallelNonzeros).
  const std::size_t n = 20000;
  std::vector<Triplet> ts;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    ts.push_back({static_cast<std::uint32_t>(i),
                  static_cast<std::uint32_t>(i + 1), 0.25});
    ts.push_back({static_cast<std::uint32_t>(i + 1),
                  static_cast<std::uint32_t>(i), 1.0 / 3.0});
    ts.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i),
                  1.0 / 7.0});
  }
  const SparseMatrix m = SparseMatrix::from_triplets(n, n, std::move(ts));
  ASSERT_GE(m.num_nonzeros(), SparseMatrix::kParallelNonzeros);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0 / static_cast<double>(i + 1);
  }
  const unsigned prev = multival::core::set_parallel_threads(1);
  const std::vector<double> left1 = m.multiply_left(x);
  const std::vector<double> right1 = m.multiply_right(x);
  for (const unsigned threads : {2u, 3u, 8u}) {
    multival::core::set_parallel_threads(threads);
    const std::vector<double> left = m.multiply_left(x);
    const std::vector<double> right = m.multiply_right(x);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(left[i], left1[i]) << "threads=" << threads << " col " << i;
      ASSERT_EQ(right[i], right1[i]) << "threads=" << threads << " row " << i;
    }
  }
  multival::core::set_parallel_threads(prev);
}

TEST(Sparse, TransposeRoundTripWithCscLayout) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      3, 2, {{0, 1, 1.0}, {2, 0, 2.0}, {1, 1, 3.0}});
  const SparseMatrix t = m.transpose();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);
  const SparseMatrix back = t.transpose();
  for (std::size_t r = 0; r < 3; ++r) {
    const auto a = m.row(r);
    const auto b = back.row(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].col, b[i].col);
      EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
    }
  }
}

TEST(Ctmc, MatrixCacheInvalidatedOnMutation) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  double lambda1 = 0.0;
  (void)c.uniformized_dtmc(lambda1);
  EXPECT_EQ(c.rate_matrix().num_nonzeros(), 1u);
  c.add_transition(1, 0, 2.0);  // must invalidate both cached matrices
  double lambda2 = 0.0;
  (void)c.uniformized_dtmc(lambda2);
  EXPECT_EQ(c.rate_matrix().num_nonzeros(), 2u);
  EXPECT_GT(lambda2, lambda1);
  // Copies drop the cache but solve identically.
  const Ctmc d = c;
  EXPECT_EQ(d.rate_matrix().num_nonzeros(), 2u);
}

}  // namespace
