// Golden tests for the static analyzer (src/analyze): one minimal trigger
// per diagnostic code, the alphabet fixpoint, the renderers, and the
// headline contract — a structural deadlock the lint proves in microseconds
// on a model whose state space exploration would need >10^6 states to hit.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "analyze/analyze.hpp"
#include "explore/oracle.hpp"
#include "proc/parser.hpp"
#include "proc/process.hpp"

namespace {

using namespace multival;
using namespace multival::proc;

analyze::Analysis lint_text(const std::string& text) {
  return analyze::lint_program(parse_program(text));
}

bool has_code(const analyze::Analysis& a, const std::string& code) {
  return std::any_of(a.diagnostics.begin(), a.diagnostics.end(),
                     [&](const core::Diagnostic& d) { return d.code == code; });
}

const core::Diagnostic& first(const analyze::Analysis& a,
                              const std::string& code) {
  for (const core::Diagnostic& d : a.diagnostics) {
    if (d.code == code) {
      return d;
    }
  }
  throw std::logic_error("no diagnostic " + code);
}

// --- alphabet fixpoint ------------------------------------------------------

TEST(Alphabets, FollowsHideRenameAndRecursion) {
  const Program p = parse_program(R"(
    process Ping := PING ; Pong endproc
    process Pong := PONG ; Ping endproc
    process Quiet := hide PING in Ping endproc
    process Loud := rename PONG -> BANG in Pong endproc
  )");
  const auto alpha = analyze::alphabets(p);
  EXPECT_EQ(alpha.at("Ping"), (analyze::GateSet{"PING", "PONG"}));
  EXPECT_EQ(alpha.at("Pong"), (analyze::GateSet{"PING", "PONG"}));
  EXPECT_EQ(alpha.at("Quiet"), (analyze::GateSet{"PONG"}));
  EXPECT_EQ(alpha.at("Loud"), (analyze::GateSet{"PING", "BANG"}));
}

TEST(Alphabets, OneSidedSyncGateVanishesFromThePar) {
  // B never joins on GO, so the par can never perform it: GO must not
  // leak into the composed alphabet the outer context sees.
  const Program p = parse_program(R"(
    process A := GO ; A endproc
    process B := WORK ; B endproc
    process Sys := A |[GO]| B endproc
  )");
  const auto alpha = analyze::alphabets(p);
  EXPECT_EQ(alpha.at("Sys"), (analyze::GateSet{"WORK"}));
}

// --- one golden trigger per code --------------------------------------------

TEST(LintGolden, Mv001UndefinedProcess) {
  const auto a = lint_text("process P := A ; Missing endproc");
  EXPECT_FALSE(a.clean());
  const auto& d = first(a, "MV001");
  EXPECT_EQ(d.severity, core::Severity::kError);
  EXPECT_NE(d.message.find("Missing"), std::string::npos);
}

TEST(LintGolden, Mv002ArityMismatch) {
  const auto a = lint_text(R"(
    process Count (n) := T !n ; Count (n + 1) endproc
    process P := Count (1 + 2, 4) endproc
  )");
  EXPECT_FALSE(a.clean());
  const auto& d = first(a, "MV002");
  EXPECT_NE(d.message.find("2 argument"), std::string::npos);
}

TEST(LintGolden, Mv003NeverFiringGateWithStuckOperandIsAnError) {
  const auto a = lint_text(R"(
    process Left := A ; Left endproc
    process Stuck := GO ; stop endproc
    process Sys := Left |[GO]| Stuck endproc
  )");
  EXPECT_FALSE(a.clean());
  const auto& d = first(a, "MV003");
  EXPECT_EQ(d.severity, core::Severity::kError);
  EXPECT_NE(d.message.find("GO"), std::string::npos);
  EXPECT_NE(d.path.find("Sys"), std::string::npos);
  EXPECT_FALSE(has_code(a, "MV004"));
}

TEST(LintGolden, Mv003SeesThroughChoiceAndGuards) {
  // Every initial branch of the right operand needs GO: still stuck.
  const auto a = lint_text(R"(
    process Left := A ; Left endproc
    process Stuck := GO !1 ; stop [] [1 == 1] -> GO !2 ; stop endproc
    process Sys := Left |[GO]| Stuck endproc
  )");
  EXPECT_TRUE(has_code(a, "MV003"));
}

TEST(LintGolden, Mv004UnreachableBehindPrefixIsOnlyAdvice) {
  // The GO occurrence sits behind a B prefix, exactly the noc router
  // restriction idiom: the operand can still move, so no error.
  const auto a = lint_text(R"(
    process Left := A ; Left endproc
    process Busy := B ; GO ; Busy endproc
    process Sys := Left |[GO]| Busy endproc
  )");
  EXPECT_TRUE(a.clean());
  const auto& d = first(a, "MV004");
  EXPECT_EQ(d.severity, core::Severity::kAdvice);
  EXPECT_FALSE(has_code(a, "MV003"));
}

TEST(LintGolden, Mv005SyncGateInNeitherAlphabet) {
  const auto a = lint_text(R"(
    process A := X ; A endproc
    process B := Y ; B endproc
    process Sys := A |[Z]| B endproc
  )");
  EXPECT_TRUE(a.clean());
  EXPECT_NE(first(a, "MV005").message.find("Z"), std::string::npos);
}

TEST(LintGolden, Mv006ConstantlyFalseGuard) {
  const auto a = lint_text(R"(
    process P := [1 == 2] -> DEAD ; stop [] LIVE ; P endproc
  )");
  EXPECT_TRUE(a.clean());
  EXPECT_TRUE(has_code(a, "MV006"));
}

TEST(LintGolden, Mv007HideAndRenameOfAbsentGate) {
  const auto a = lint_text(R"(
    process P := hide GHOST in A ; stop endproc
    process Q := rename PHANTOM -> X in B ; stop endproc
  )");
  EXPECT_TRUE(a.clean());
  EXPECT_EQ(a.count(core::Severity::kWarning), 2u);
  EXPECT_TRUE(has_code(a, "MV007"));
}

TEST(LintGolden, Mv008SyncOnGateHiddenInsideOperand) {
  const auto a = lint_text(R"(
    process A := S ; A endproc
    process B := S ; B endproc
    process Sys := (hide S in A) |[S]| B endproc
  )");
  EXPECT_FALSE(a.clean());
  EXPECT_TRUE(has_code(a, "MV008"));
}

TEST(LintGolden, Mv021HidePlacementAdvice) {
  // G is local to the left operand and not synchronised: the hide can be
  // pushed into that operand before the product is built.
  const auto a = lint_text(R"(
    process A := G ; S ; A endproc
    process B := S ; B endproc
    process Sys := hide G in (A |[S]| B) endproc
  )");
  EXPECT_TRUE(a.clean());
  const auto& d = first(a, "MV021");
  EXPECT_EQ(d.severity, core::Severity::kAdvice);
  EXPECT_NE(d.message.find("left"), std::string::npos);
  EXPECT_NE(d.hint.find("planner"), std::string::npos);
}

TEST(LintGolden, Mv021SilentWhenSynchronisedOrShared) {
  // Synchronised gate: the hide must stay above the par.
  const auto sync = lint_text(R"(
    process A := G ; A endproc
    process B := G ; B endproc
    process Sys := hide G in (A |[G]| B) endproc
  )");
  EXPECT_FALSE(has_code(sync, "MV021"));
  // Interleaved but used by both operands: pushing the hide into one side
  // would change the other's alphabet, so no advice either.
  const auto shared = lint_text(R"(
    process A := G ; S ; A endproc
    process B := G ; S ; B endproc
    process Sys := hide G in (A |[S]| B) endproc
  )");
  EXPECT_FALSE(has_code(shared, "MV021"));
}

TEST(LintGolden, Mv009UnboundValueVariable) {
  const auto a = lint_text("process P := OUT !x ; stop endproc");
  EXPECT_FALSE(a.clean());
  EXPECT_NE(first(a, "MV009").message.find("x"), std::string::npos);
}

TEST(LintGolden, Mv009BoundVariablesStayClean) {
  const auto a = lint_text(R"(
    process P (n) := IN ?x:0..2 ; OUT !(x + n) ; P (n) endproc
  )");
  EXPECT_TRUE(a.diagnostics.empty());
}

TEST(LintGolden, Mv010ParseFailureCarriesPosition) {
  try {
    (void)parse_program("process P :=\n  OUT !! ; stop\nendproc");
    FAIL() << "expected ProcParseError";
  } catch (const ProcParseError& e) {
    EXPECT_EQ(e.diagnostic().code, "MV010");
    EXPECT_EQ(e.diagnostic().severity, core::Severity::kError);
    EXPECT_GT(e.diagnostic().line, 0u);
  }
}

TEST(LintGolden, Mv011DelayRacingNondeterminism) {
  imc::Imc m;
  m.add_states(3);
  m.add_interactive(0, "a", 1);
  m.add_interactive(0, "b", 2);
  m.add_markovian(0, 1.5, 1);
  const auto a = analyze::lint_imc(m);
  EXPECT_TRUE(a.clean());
  EXPECT_NE(first(a, "MV011").message.find("states 0"), std::string::npos);
}

TEST(LintGolden, Mv012RateCutByMaximalProgress) {
  imc::Imc m;
  m.add_states(2);
  m.add_interactive(0, "i", 1);  // outgoing tau: state 0 is unstable
  m.add_markovian(0, 2.0, 1);
  const auto a = analyze::lint_imc(m);
  EXPECT_TRUE(has_code(a, "MV012"));
  EXPECT_FALSE(has_code(a, "MV011"));
}

TEST(LintGolden, Mv013ResidualNondeterminismIsAdvice) {
  imc::Imc m;
  m.add_states(3);
  m.add_interactive(0, "a", 1);
  m.add_interactive(0, "b", 2);
  const auto a = analyze::lint_imc(m);
  const auto& d = first(a, "MV013");
  EXPECT_EQ(d.severity, core::Severity::kAdvice);
}

TEST(LintGolden, DeterministicImcIsSilent) {
  imc::Imc m;
  m.add_states(3);
  m.add_interactive(0, "a", 1);
  m.add_markovian(1, 3.0, 2);
  EXPECT_TRUE(analyze::lint_imc(m).diagnostics.empty());
}

TEST(LintGolden, Mv020FixedDelayAdvisory) {
  const core::Diagnostic d = analyze::fixed_delay_advisory(1.0, 0.1);
  EXPECT_EQ(d.code, "MV020");
  EXPECT_EQ(d.severity, core::Severity::kAdvice);
  EXPECT_NE(d.message.find("Erlang"), std::string::npos);
  // Halving the bound must grow the phase count (~4x asymptotically).
  const auto phases = [](double eps) {
    const std::string m = analyze::fixed_delay_advisory(1.0, eps).message;
    const auto at = m.find("Erlang-");
    return std::stoul(m.substr(at + 7));
  };
  EXPECT_GT(phases(0.05), 2 * phases(0.1));
  EXPECT_THROW((void)analyze::fixed_delay_advisory(0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)analyze::fixed_delay_advisory(1.0, 1.5),
               std::invalid_argument);
}

// --- renderers and gate ------------------------------------------------------

TEST(LintRender, JsonEscapesAndListsEveryField) {
  const auto a = lint_text("process P := A ; Missing endproc");
  const std::string json = core::render_json(a.diagnostics);
  EXPECT_NE(json.find("\"code\":\"MV001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  core::Diagnostic quoted{"MV000", core::Severity::kAdvice,
                          "say \"hi\"\n", "p\\q", 1, 2, ""};
  const std::string s = quoted.to_json();
  EXPECT_NE(s.find("say \\\"hi\\\"\\n"), std::string::npos);
  EXPECT_NE(s.find("p\\\\q"), std::string::npos);
}

TEST(LintRender, SummaryCountsBySeverity) {
  const auto a = lint_text(R"(
    process P := hide GHOST in A ; Missing endproc
  )");
  EXPECT_EQ(a.count(core::Severity::kError), 1u);
  EXPECT_EQ(a.count(core::Severity::kWarning), 1u);
  EXPECT_NE(a.summary().find("1 error"), std::string::npos);
}

TEST(LintGate, RequireWellFormedThrowsOnErrorsOnly) {
  const Program warn = parse_program(
      "process P := hide GHOST in A ; stop endproc");
  EXPECT_NO_THROW(analyze::require_well_formed(warn));
  const Program bad = parse_program("process P := A ; Missing endproc");
  try {
    analyze::require_well_formed(bad);
    FAIL() << "expected ModelError";
  } catch (const analyze::ModelError& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_NE(std::string(e.what()).find("MV001"), std::string::npos);
  }
}

// --- the headline contract ---------------------------------------------------

// Seven interleaved ten-state counters give a 10^7-state product in which
// the composed GO can never fire; its right operand is stuck from its
// initial state.  The lint must prove the deadlock from the syntax alone:
// well under 50 ms, zero states generated.
TEST(LintScale, FindsDeadlockInTenMillionStateModelWithoutExploring) {
  std::string text;
  std::string left = "Cell0";
  for (int i = 0; i < 7; ++i) {
    const std::string id = std::to_string(i);
    text += "process Cell" + id + " (n) :=\n";
    text += "    [n < 9] -> INC" + id + " ; Cell" + id + " (n + 1)\n";
    text += " [] [n > 0] -> DEC" + id + " ; Cell" + id + " (n - 1)\n";
    text += "endproc\n";
    if (i > 0) {
      left = "(" + left + " ||| Cell" + id + " (0))";
    } else {
      left = "Cell0 (0)";
    }
  }
  text += "process Blocked := GO ; stop endproc\n";
  text += "process System := " + left + " |[GO]| Blocked endproc\n";

  const auto program =
      std::make_shared<const Program>(parse_program(text));
  const auto t0 = std::chrono::steady_clock::now();
  const analyze::Analysis a = analyze::lint_program(*program);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  EXPECT_FALSE(a.clean());
  const auto& d = first(a, "MV003");
  EXPECT_NE(d.message.find("GO"), std::string::npos);
  EXPECT_EQ(a.stats.states_generated, 0u);  // the no-exploration contract
  EXPECT_LT(ms, 50.0);
  EXPECT_LT(a.stats.seconds, 0.050);

  // The same proof gates exploration: the oracle refuses to start on the
  // 10^7-state product instead of diverging into it.
  EXPECT_THROW((void)explore::proc_oracle(program, "System", {}),
               analyze::ModelError);
}

}  // namespace
