// Tests for the static state-bound analyzer (analyze/bounds).
//
// The load-bearing property is SOUNDNESS: for every model we can afford to
// generate, predicted_states must dominate the explored state count — on
// the builtin case studies, on hand-built operator exercises, and on a
// seeded family of random guarded-counter programs.  On pure xMAS queue
// fabrics and the guard-bounded counter family the bound must additionally
// be EXACT, which pins the counting semantics to the generator's lift()
// semantics rather than a lazily loose over-approximation.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "analyze/bounds.hpp"
#include "core/diag.hpp"
#include "fame/coherence.hpp"
#include "fame/coherence_n.hpp"
#include "noc/mesh.hpp"
#include "proc/expr.hpp"
#include "proc/generator.hpp"
#include "proc/process.hpp"
#include "xmas/compile.hpp"
#include "xmas/netlist.hpp"
#include "xstream/queue_model.hpp"

namespace multival {
namespace {

using analyze::BoundOptions;
using analyze::BoundReport;
using analyze::Interval;
using analyze::kUnboundedStates;
using proc::call;
using proc::choice;
using proc::evar;
using proc::guard;
using proc::lit;
using proc::prefix;
using proc::stop;

std::uint64_t actual_states(const proc::Program& p, const proc::TermPtr& t) {
  proc::GenerateOptions opts;
  opts.max_states = 1 << 20;
  return proc::generate_term(p, t, opts).num_states();
}

/// predicted >= actual, and the analysis never touched the generator.
void expect_sound(const proc::Program& p, const proc::TermPtr& root,
                  const std::string& what) {
  const BoundReport r = analyze::predicted_bounds(p, root);
  EXPECT_EQ(r.stats.states_generated, 0u) << what;
  const std::uint64_t actual = actual_states(p, root);
  EXPECT_GE(r.total, actual) << what << ": predicted " << r.total
                             << " < actual " << actual;
}

/// The ten-state guarded counter from bench_analyze: exactly 10 states.
proc::Program cells_program() {
  proc::Program p;
  p.define("Cell", {"v"},
           choice({guard(evar("v") < lit(9),
                         prefix("INC", call("Cell", {evar("v") + lit(1)}))),
                   guard(evar("v") > lit(0),
                         prefix("DEC", call("Cell", {evar("v") - lit(1)})))}));
  return p;
}

std::size_t count_code(const BoundReport& r, const std::string& code,
                       core::Severity sev) {
  std::size_t n = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == code && d.severity == sev) ++n;
  }
  return n;
}

// ---- interval / arithmetic units -------------------------------------------

TEST(BoundsInterval, WidthAndJoin) {
  EXPECT_EQ(Interval::range(0, 4).width(), 5u);
  EXPECT_EQ(Interval::exactly(7).width(), 1u);
  EXPECT_EQ(Interval::top().width(), kUnboundedStates);
  EXPECT_EQ(Interval::range(0, Interval::kPosInf).width(), kUnboundedStates);
  EXPECT_FALSE(Interval::range(0, Interval::kPosInf).bounded());
  EXPECT_TRUE(Interval::range(-3, 3).bounded());
  EXPECT_EQ(Interval::range(0, 2).join(Interval::range(5, 9)),
            Interval::range(0, 9));
  EXPECT_EQ(Interval::range(0, 4).to_string(), "[0, 4]");
}

TEST(BoundsInterval, SaturatingArithmetic) {
  EXPECT_EQ(analyze::saturating_add(2, 3), 5u);
  EXPECT_EQ(analyze::saturating_mul(1u << 20, 1u << 20), 1ull << 40);
  EXPECT_EQ(analyze::saturating_add(kUnboundedStates, 1), kUnboundedStates);
  EXPECT_EQ(analyze::saturating_mul(kUnboundedStates, 0), kUnboundedStates);
  EXPECT_EQ(analyze::saturating_mul(~0ull >> 1, 4), kUnboundedStates);
  EXPECT_EQ(analyze::format_states(12), "12");
  EXPECT_EQ(analyze::format_states(kUnboundedStates), "unbounded");
}

// ---- exactness on guard-bounded counters -----------------------------------

TEST(Bounds, CellsCounterIsExact) {
  const proc::Program p = cells_program();
  const proc::TermPtr root = call("Cell", {lit(0)});
  const BoundReport r = analyze::predicted_bounds(p, root);
  EXPECT_EQ(r.total, 10u);
  EXPECT_EQ(actual_states(p, root), 10u);
  ASSERT_EQ(r.defs.size(), 1u);
  EXPECT_EQ(r.defs[0].name, "Cell");
  EXPECT_FALSE(r.defs[0].widened);
  ASSERT_EQ(r.defs[0].intervals.size(), 1u);
  EXPECT_EQ(r.defs[0].intervals[0], Interval::range(0, 9));
  EXPECT_EQ(count_code(r, "MV040", core::Severity::kAdvice), 1u);
  EXPECT_EQ(count_code(r, "MV041", core::Severity::kError), 0u);
}

TEST(Bounds, InterleavedCellsMultiply) {
  const proc::Program p = cells_program();
  const proc::TermPtr root =
      proc::interleaving(call("Cell", {lit(0)}), call("Cell", {lit(0)}));
  const BoundReport r = analyze::predicted_bounds(p, root);
  EXPECT_EQ(r.total, 100u);
  EXPECT_EQ(actual_states(p, root), 100u);
  EXPECT_EQ(r.components.size(), 2u);
}

// ---- sync-gate-aware tightening and operator bounds ------------------------

TEST(Bounds, OneSidedSyncGateBlocksContinuation) {
  proc::Program p;
  // G is in the sync set but only the left operand performs it: the left
  // component is stuck at its first prefix, so the pair has one state.
  const proc::TermPtr root =
      proc::par(prefix("G", prefix("H", stop())), {"G"}, stop());
  EXPECT_EQ(analyze::predicted_states(p, root), 1u);
  EXPECT_EQ(actual_states(p, root), 1u);
}

TEST(Bounds, RenameMapsBlockedGatesBack) {
  proc::Program p;
  // A is renamed to B below the composition; the sync set blocks B, which
  // must translate back to A inside the renamed operand.
  const proc::TermPtr root = proc::par(
      proc::rename({{"A", "B"}}, prefix("A", stop())), {"B"}, stop());
  EXPECT_EQ(analyze::predicted_states(p, root), 1u);
  EXPECT_EQ(actual_states(p, root), 1u);
}

TEST(Bounds, HideAndRenameAreBoundNeutral) {
  proc::Program p;
  const proc::TermPtr plain = prefix("A", stop());
  EXPECT_EQ(analyze::predicted_states(p, plain), 2u);
  EXPECT_EQ(analyze::predicted_states(p, proc::hide({"A"}, plain)), 2u);
  EXPECT_EQ(analyze::predicted_states(
                p, proc::rename({{"A", "B"}}, plain)),
            2u);
}

TEST(Bounds, SequentialCompositionAndExit) {
  proc::Program p;
  const proc::TermPtr root =
      proc::seq(prefix("A", proc::exit_()), prefix("B", stop()));
  expect_sound(p, root, "seq");
  // Accept offers bind their range width into every downstream location
  // that actually mentions the variable (the generator restricts the env
  // to free variables, and so does the counter).
  const proc::TermPtr offer =
      prefix("IN", {proc::accept("x", 0, 3)},
             prefix("OUT", {proc::emit(evar("x"))}, stop()));
  const BoundReport r = analyze::predicted_bounds(p, offer);
  EXPECT_EQ(r.total, 1u + 4u + 1u);  // IN location + 4x OUT + 1 stop
  EXPECT_EQ(actual_states(p, offer), 6u);
}

// ---- builtin case studies stay sound ---------------------------------------

TEST(Bounds, BuiltinCaseStudiesAreSound) {
  {
    const proc::Program p = noc::single_packet_program(0, 3);
    expect_sound(p, call("Scenario"), "noc single-packet");
  }
  {
    const proc::Program p =
        fame::coherence_system_program(fame::Protocol::kMsi);
    expect_sound(p, call("System"), "fame MSI");
  }
  {
    const proc::Program p =
        fame::coherence_system_program(fame::Protocol::kMesi);
    expect_sound(p, call("System"), "fame MESI");
  }
  {
    const proc::Program p =
        fame::coherence_system_n_program(fame::Protocol::kMsi, 2);
    expect_sound(p, call("SystemN"), "fame MSI n=2");
  }
  {
    const proc::Program p = xstream::virtual_queue_program({});
    expect_sound(p, call("VirtualQueue"), "xstream virtual queue");
  }
  {
    const proc::Program p = xstream::drain_scenario_program({}, 3);
    expect_sound(p, call("DrainScenario"), "xstream drain");
  }
}

TEST(Bounds, CompiledBuiltinFabricsAreSound) {
  for (const std::string& name : xmas::builtin_fabric_names()) {
    if (name == "credit-loop-deadlock") continue;  // compile() refuses (MV031)
    const xmas::Netlist n = xmas::builtin_fabric(name, 2);
    const BoundReport r = analyze::predicted_bounds(n);
    EXPECT_EQ(r.stats.states_generated, 0u) << name;
    const xmas::Compiled c = xmas::compile(n, {});
    const std::uint64_t actual = actual_states(*c.program, call(c.entry));
    EXPECT_GE(r.total, actual) << name;
    // The netlist overload is definitionally the compiled-term analysis.
    EXPECT_EQ(r.total, analyze::predicted_states(*c.program, call(c.entry)))
        << name;
  }
}

// ---- exactness on pure queue fabrics ---------------------------------------

TEST(Bounds, PureQueueChainIsExact) {
  xmas::Netlist n;
  n.name = "chain";
  n.add({xmas::PrimitiveKind::kSource, "src"});
  xmas::Element q1{xmas::PrimitiveKind::kQueue, "q1"};
  q1.capacity = 2;
  xmas::Element q2{xmas::PrimitiveKind::kQueue, "q2"};
  q2.capacity = 3;
  n.add(q1);
  n.add(q2);
  n.add({xmas::PrimitiveKind::kSink, "snk"});
  n.connect({"a", {"src", "out"}, {"q1", "in"}, 0});
  n.connect({"b", {"q1", "out"}, {"q2", "in"}, 0});
  n.connect({"c", {"q2", "out"}, {"snk", "in"}, 0});

  const BoundReport r = analyze::predicted_bounds(n);
  EXPECT_EQ(r.total, (2u + 1u) * (3u + 1u));
  const xmas::Compiled c = xmas::compile(n, {});
  EXPECT_EQ(actual_states(*c.program, call(c.entry)), r.total);
}

// ---- MV041: unbounded-counter proofs ---------------------------------------

TEST(Bounds, UnguardedCounterIsAnError) {
  proc::Program p;
  p.define("Count", {"n"}, prefix("TICK", call("Count", {evar("n") + lit(1)})));
  const BoundReport r = analyze::predicted_bounds(p, call("Count", {lit(0)}));
  EXPECT_TRUE(r.unbounded());
  EXPECT_EQ(r.stats.states_generated, 0u);
  EXPECT_EQ(count_code(r, "MV041", core::Severity::kError), 1u);
  ASSERT_EQ(r.defs.size(), 1u);
  EXPECT_TRUE(r.defs[0].widened);
  EXPECT_NE(r.defs[0].widening_path.find("Count"), std::string::npos);
  EXPECT_NE(r.defs[0].widening_path.find("n + 1"), std::string::npos);
}

TEST(Bounds, ThrottledCreditCounterIsOnlyAWarning) {
  // The xstream pop side owes credits without an upper guard, but every
  // growth step crosses gates the enclosing composition synchronises on:
  // the bound lives in the peer, so this must stay below error severity
  // (the builtin must keep linting clean).
  const proc::Program p = xstream::virtual_queue_program({});
  const BoundReport r = analyze::predicted_bounds(p, call("VirtualQueue"));
  EXPECT_TRUE(r.unbounded());
  EXPECT_EQ(count_code(r, "MV041", core::Severity::kError), 0u);
  EXPECT_GE(count_code(r, "MV041", core::Severity::kWarning), 1u);
}

// ---- MV042: component budgets ----------------------------------------------

TEST(Bounds, ComponentBudgetAdvisories) {
  const proc::Program p = cells_program();
  const proc::TermPtr root =
      proc::interleaving(call("Cell", {lit(0)}), call("Cell", {lit(0)}));
  BoundOptions opts;
  opts.component_budget = 5;
  const BoundReport r = analyze::predicted_bounds(p, root, opts);
  EXPECT_EQ(count_code(r, "MV042", core::Severity::kAdvice), 2u);
  opts.component_budget = 50;
  EXPECT_EQ(count_code(analyze::predicted_bounds(p, root, opts), "MV042",
                       core::Severity::kAdvice),
            0u);
}

TEST(Bounds, UnboundedComponentExceedsAnyBudget) {
  const proc::Program p = xstream::virtual_queue_program({});
  BoundOptions opts;
  opts.component_budget = 1'000'000;
  const BoundReport r =
      analyze::predicted_bounds(p, call("VirtualQueue"), opts);
  EXPECT_GE(count_code(r, "MV042", core::Severity::kAdvice), 1u);
  bool found_unbounded_component = false;
  for (const auto& c : r.components) {
    if (c.states == kUnboundedStates) {
      found_unbounded_component = true;
      EXPECT_FALSE(c.cause.empty());
    }
  }
  EXPECT_TRUE(found_unbounded_component);
}

// ---- randomised soundness ---------------------------------------------------

/// Random two-definition guarded-counter program.  Every recursion is
/// prefix-guarded and every parameter is boxed into [0, K] by guards (or
/// re-seeded from a bounded accept), so generation always terminates and
/// the interval fixpoint faces joins over genuinely different call sites.
proc::Program random_counter_program(std::mt19937& rng, proc::TermPtr* root) {
  proc::Program p;
  const int k = 1 + static_cast<int>(rng() % 8);
  const int m = static_cast<int>(rng() % 3);
  for (int d = 0; d < 2; ++d) {
    const std::string id = std::to_string(d);
    const std::string callee_up = rng() % 2 ? "P0" : "P1";
    const std::string callee_dn = rng() % 2 ? "P0" : "P1";
    std::vector<proc::TermPtr> branches;
    branches.push_back(
        guard(evar("n") < lit(k),
              prefix("UP" + id, call(callee_up, {evar("n") + lit(1)}))));
    branches.push_back(
        guard(evar("n") > lit(0),
              prefix("DN" + id, call(callee_dn, {evar("n") - lit(1)}))));
    if (rng() % 2) {
      branches.push_back(prefix("RST" + id, {proc::accept("x", 0, m)},
                                call("P" + id, {evar("x")})));
    }
    p.define("P" + id, {"n"}, choice(std::move(branches)));
  }
  switch (rng() % 3) {
    case 0:
      *root = call("P0", {lit(0)});
      break;
    case 1:
      *root = proc::interleaving(call("P0", {lit(0)}), call("P1", {lit(0)}));
      break;
    default:
      *root = proc::par(call("P0", {lit(0)}), {"UP0"}, call("P1", {lit(0)}));
      break;
  }
  return p;
}

TEST(Bounds, RandomGuardedCountersAreSound) {
  for (std::uint32_t seed = 0; seed < 24; ++seed) {
    std::mt19937 rng(seed);
    proc::TermPtr root;
    const proc::Program p = random_counter_program(rng, &root);
    expect_sound(p, root, "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace multival
