// Case-study tests: xSTream credit-based virtual queues — functional
// verification (including the two seeded protocol defects) and performance.
#include <gtest/gtest.h>

#include <numeric>

#include "bisim/equivalence.hpp"
#include "core/flow.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "xstream/perf.hpp"
#include "xstream/queue_model.hpp"

namespace {

using namespace multival;
using namespace multival::xstream;

QueueConfig config(QueueVariant v, int capacity = 2, int max_value = 1) {
  QueueConfig cfg;
  cfg.capacity = capacity;
  cfg.max_value = max_value;
  cfg.variant = v;
  return cfg;
}

// --- functional: correct variant ----------------------------------------------

TEST(XStreamFunctional, CorrectQueueIsDeadlockFree) {
  const lts::Lts l = virtual_queue_lts(config(QueueVariant::kCorrect));
  EXPECT_TRUE(lts::deadlock_states(l).empty());
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
}

TEST(XStreamFunctional, CorrectQueueNeverLoses) {
  const lts::Lts l = virtual_queue_lts(config(QueueVariant::kCorrect));
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("LOSE*"))));
}

TEST(XStreamFunctional, CorrectQueueEquivalentToFifoSpec) {
  // The paper's service-equivalence check: hide the protocol, compare with
  // the plain FIFO of capacity C+1 modulo branching bisimulation.
  const QueueConfig cfg = config(QueueVariant::kCorrect);
  const lts::Lts impl = virtual_queue_lts(cfg);
  const lts::Lts spec = reference_fifo_lts(cfg);
  EXPECT_TRUE(bisim::equivalent(impl, spec, bisim::Equivalence::kBranching));
}

TEST(XStreamFunctional, CorrectQueuePreservesFifoOrder) {
  // Push 0 then 1: the first pop must deliver 0 (response-style check via
  // the spec equivalence is stronger; this is a direct sanity property).
  const lts::Lts l = virtual_queue_lts(config(QueueVariant::kCorrect));
  // After any PUSH !0 with no intervening pops, POP !1 cannot be the first
  // delivery.  We check a weaker inevitability: POP of the pushed value is
  // possible.
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("POP !0"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("POP !1"))));
}

TEST(XStreamFunctional, VerifyReportAllGreen) {
  const auto report =
      core::verify(virtual_queue_lts(config(QueueVariant::kCorrect)),
                   {{"no packet loss", mc::never(mc::act("LOSE*"))}});
  EXPECT_TRUE(report.all_hold());
}

// --- functional: the two seeded defects ------------------------------------------

TEST(XStreamFunctional, LostCreditVariantDeadlocks) {
  // Issue 1: a credit leak wedges the queue.
  const lts::Lts l = virtual_queue_lts(config(QueueVariant::kLostCredit));
  EXPECT_FALSE(mc::check(l, mc::deadlock_freedom()));
  EXPECT_FALSE(lts::deadlock_states(l).empty());
}

TEST(XStreamFunctional, LostCreditVariantNotEquivalentToSpec) {
  const QueueConfig cfg = config(QueueVariant::kLostCredit);
  EXPECT_FALSE(bisim::equivalent(virtual_queue_lts(cfg),
                                 reference_fifo_lts(cfg),
                                 bisim::Equivalence::kBranching));
}

TEST(XStreamFunctional, EagerCreditVariantLosesPackets) {
  // Issue 2: eagerly-granted credits overrun the FIFO.
  const lts::Lts l = virtual_queue_lts(config(QueueVariant::kEagerCredit));
  EXPECT_FALSE(mc::check(l, mc::never(mc::act("LOSE*"))));
}

TEST(XStreamFunctional, EagerCreditLossIsReachableQuickly) {
  const lts::Lts l = virtual_queue_lts(config(QueueVariant::kEagerCredit));
  const auto sat = mc::evaluate(l, mc::can_do(mc::act("LOSE*")));
  EXPECT_TRUE(sat.contains(l.initial_state()));
}

TEST(XStreamFunctional, VariantNames) {
  EXPECT_STREQ(to_string(QueueVariant::kCorrect), "correct");
  EXPECT_STREQ(to_string(QueueVariant::kLostCredit), "lost-credit");
  EXPECT_STREQ(to_string(QueueVariant::kEagerCredit), "eager-credit");
}

TEST(XStreamFunctional, ConfigValidation) {
  EXPECT_THROW((void)virtual_queue_lts(config(QueueVariant::kCorrect, 0)),
               std::invalid_argument);
  EXPECT_THROW((void)virtual_queue_lts(config(QueueVariant::kCorrect, 2, 9)),
               std::invalid_argument);
}

class CapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CapacitySweep, CorrectVariantHealthyAtAllCapacities) {
  const QueueConfig cfg = config(QueueVariant::kCorrect, GetParam(), 1);
  const lts::Lts l = virtual_queue_lts(cfg);
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom())) << "cap " << GetParam();
  EXPECT_TRUE(bisim::equivalent(l, reference_fifo_lts(cfg),
                                bisim::Equivalence::kBranching))
      << "cap " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweep, ::testing::Values(1, 2, 3));

// --- occupancy labelling -----------------------------------------------------------

TEST(Occupancy, SimpleQueueBalance) {
  lts::Lts l;
  l.add_states(3);
  l.add_transition(0, "PUSH", 1);
  l.add_transition(1, "PUSH", 2);
  l.add_transition(2, "POP !0", 1);
  l.add_transition(1, "POP !0", 0);
  const auto occ = occupancy_of_states(l, "PUSH", "POP");
  EXPECT_EQ(occ[0], 0);
  EXPECT_EQ(occ[1], 1);
  EXPECT_EQ(occ[2], 2);
}

TEST(Occupancy, InconsistentBalanceThrows) {
  lts::Lts l;
  l.add_states(2);
  l.add_transition(0, "PUSH", 1);
  l.add_transition(0, "OTHER", 1);  // same target, different balance
  EXPECT_THROW((void)occupancy_of_states(l, "PUSH", "POP"),
               std::runtime_error);
}

// --- performance -----------------------------------------------------------------------

TEST(XStreamPerf, DistributionIsProbability) {
  QueuePerfParams p;
  p.queue = config(QueueVariant::kCorrect, 2, 0);
  const QueuePerfResult r = analyze_virtual_queue(p);
  const double total = std::accumulate(r.occupancy_distribution.begin(),
                                       r.occupancy_distribution.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(r.ctmc_states, 0u);
}

TEST(XStreamPerf, LittleLawConsistency) {
  QueuePerfParams p;
  p.queue = config(QueueVariant::kCorrect, 2, 0);
  p.push_rate = 1.0;
  p.pop_rate = 2.0;
  const QueuePerfResult r = analyze_virtual_queue(p);
  EXPECT_NEAR(r.mean_latency * r.throughput, r.mean_occupancy, 1e-9);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_LE(r.throughput, 1.0 + 1e-9);  // cannot exceed the arrival rate
}

TEST(XStreamPerf, HeavierLoadRaisesOccupancy) {
  QueuePerfParams low;
  low.queue = config(QueueVariant::kCorrect, 2, 0);
  low.push_rate = 0.5;
  QueuePerfParams high = low;
  high.push_rate = 4.0;
  const auto rl = analyze_virtual_queue(low);
  const auto rh = analyze_virtual_queue(high);
  EXPECT_GT(rh.mean_occupancy, rl.mean_occupancy);
  EXPECT_GT(rh.utilisation, rl.utilisation);
}

TEST(XStreamPerf, ThroughputSaturatesAtServiceRate) {
  QueuePerfParams p;
  p.queue = config(QueueVariant::kCorrect, 2, 0);
  p.push_rate = 50.0;  // overload
  p.pop_rate = 2.0;
  const auto r = analyze_virtual_queue(p);
  EXPECT_LE(r.throughput, p.pop_rate + 1e-9);
  EXPECT_GT(r.throughput, 0.9 * p.pop_rate);  // near saturation
}

TEST(XStreamPerf, FasterNetworkReducesLatency) {
  QueuePerfParams slow;
  slow.queue = config(QueueVariant::kCorrect, 2, 0);
  slow.net_rate = 1.0;
  slow.credit_rate = 1.0;
  QueuePerfParams fast = slow;
  fast.net_rate = 50.0;
  fast.credit_rate = 50.0;
  const auto rs = analyze_virtual_queue(slow);
  const auto rf = analyze_virtual_queue(fast);
  EXPECT_LT(rf.mean_latency, rs.mean_latency);
}

}  // namespace
