// Unit and property tests for the mc/ module (mu-calculus model checking).
#include <gtest/gtest.h>

#include "lts/lts.hpp"
#include "mc/evaluator.hpp"
#include "mc/formula.hpp"
#include "mc/properties.hpp"

namespace {

using namespace multival;
using namespace multival::mc;
using lts::Lts;

// --- glob matching -----------------------------------------------------------

TEST(Glob, ExactMatch) {
  EXPECT_TRUE(glob_match("PUSH", "PUSH"));
  EXPECT_FALSE(glob_match("PUSH", "POP"));
  EXPECT_FALSE(glob_match("PUSH", "PUSH !1"));
}

TEST(Glob, StarMatchesRuns) {
  EXPECT_TRUE(glob_match("PUSH*", "PUSH !1 !2"));
  EXPECT_TRUE(glob_match("PUSH*", "PUSH"));
  EXPECT_TRUE(glob_match("*!2", "PUSH !1 !2"));
  EXPECT_TRUE(glob_match("P*H*", "PUSH !9"));
  EXPECT_FALSE(glob_match("POP*", "PUSH"));
}

TEST(Glob, QuestionMatchesOneChar) {
  EXPECT_TRUE(glob_match("L?", "L1"));
  EXPECT_FALSE(glob_match("L?", "L12"));
}

TEST(Glob, EmptyCases) {
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_FALSE(glob_match("?", ""));
}

// --- action formulas -----------------------------------------------------------

TEST(ActionFormulas, Basic) {
  EXPECT_TRUE(act_any()->matches("A", false));
  EXPECT_TRUE(act_any()->matches("i", true));
  EXPECT_TRUE(act_tau()->matches("i", true));
  EXPECT_FALSE(act_tau()->matches("A", false));
  EXPECT_TRUE(act_visible()->matches("A", false));
  EXPECT_FALSE(act_visible()->matches("i", true));
}

TEST(ActionFormulas, GlobNeverMatchesTau) {
  // Even the pattern "i" denotes a visible label, not tau.
  EXPECT_FALSE(act("i")->matches("i", true));
  EXPECT_FALSE(act("*")->matches("i", true));
}

TEST(ActionFormulas, BooleanCombinators) {
  const auto f = act_and(act("PUSH*"), act_not(act("PUSH !0*")));
  EXPECT_TRUE(f->matches("PUSH !1", false));
  EXPECT_FALSE(f->matches("PUSH !0", false));
  const auto g = act_or(act("A"), act("B"));
  EXPECT_TRUE(g->matches("B", false));
  EXPECT_FALSE(g->matches("C", false));
}

TEST(ActionFormulas, ToString) {
  EXPECT_EQ(act_or(act_tau(), act("A*"))->to_string(), "(tau | 'A*')");
}

// --- StateSet -------------------------------------------------------------------

TEST(StateSetTest, InsertContainsErase) {
  StateSet s(130);
  EXPECT_FALSE(s.contains(0));
  s.insert(0);
  s.insert(64);
  s.insert(129);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(129));
  EXPECT_EQ(s.count(), 3u);
  s.erase(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.count(), 2u);
}

TEST(StateSetTest, FillAndComplementRespectSize) {
  StateSet s(70);
  s.fill();
  EXPECT_EQ(s.count(), 70u);
  s.complement();
  EXPECT_EQ(s.count(), 0u);
}

TEST(StateSetTest, SetOperations) {
  StateSet a(10);
  StateSet b(10);
  a.insert(1);
  a.insert(2);
  b.insert(2);
  b.insert(3);
  StateSet i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.contains(2));
  StateSet u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
}

TEST(StateSetTest, Members) {
  StateSet s(5);
  s.insert(4);
  s.insert(1);
  const auto m = s.members();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], 1u);
  EXPECT_EQ(m[1], 4u);
}

// --- evaluator -------------------------------------------------------------------

// 0 -A-> 1 -B-> 2 (deadlock), 0 -i-> 2.
Lts diamond_lts() {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 2);
  l.add_transition(0, "i", 2);
  return l;
}

TEST(Evaluator, TrueFalse) {
  const Lts l = diamond_lts();
  EXPECT_EQ(evaluate(l, f_true()).count(), 3u);
  EXPECT_EQ(evaluate(l, f_false()).count(), 0u);
}

TEST(Evaluator, DiamondAndBox) {
  const Lts l = diamond_lts();
  const StateSet can_a = evaluate(l, dia(act("A"), f_true()));
  EXPECT_TRUE(can_a.contains(0));
  EXPECT_FALSE(can_a.contains(1));
  // Box is vacuously true on states without matching transitions.
  const StateSet all_a_to_false = evaluate(l, box(act("A"), f_false()));
  EXPECT_FALSE(all_a_to_false.contains(0));
  EXPECT_TRUE(all_a_to_false.contains(1));
  EXPECT_TRUE(all_a_to_false.contains(2));
}

TEST(Evaluator, NotOnClosedFormula) {
  const Lts l = diamond_lts();
  const StateSet s = evaluate(l, f_not(dia(act("A"), f_true())));
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.contains(1));
}

TEST(Evaluator, NotOnOpenFormulaThrows) {
  const Lts l = diamond_lts();
  const auto bad = mu("X", f_not(var("X")));
  EXPECT_THROW((void)evaluate(l, bad), std::invalid_argument);
}

TEST(Evaluator, FreeVariableThrows) {
  const Lts l = diamond_lts();
  EXPECT_THROW((void)evaluate(l, var("X")), std::invalid_argument);
  EXPECT_THROW((void)evaluate(l, nullptr), std::invalid_argument);
}

TEST(Evaluator, MuReachability) {
  const Lts l = diamond_lts();
  // mu X. <B>tt || <any>X : can eventually do B.
  const auto f = can_do(act("B"));
  const StateSet s = evaluate(l, f);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
}

TEST(Evaluator, NuInvariant) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 0);
  l.add_transition(0, "B", 1);
  // nu X. <any>tt && [any]X fails at 0 because state 1 deadlocks.
  EXPECT_FALSE(check(l, deadlock_freedom()));
  Lts m;
  m.add_states(1);
  m.add_transition(0, "A", 0);
  EXPECT_TRUE(check(m, deadlock_freedom()));
}

TEST(Evaluator, EmptyLtsChecksTrue) {
  Lts l;
  EXPECT_TRUE(check(l, deadlock_freedom()));
}

// --- canned properties ----------------------------------------------------------

TEST(Properties, Inevitable) {
  // 0 -A-> 1 -B-> 0 : B inevitable from everywhere.
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 0);
  EXPECT_TRUE(check(l, inevitable(act("B"))));
  // Add an escape loop avoiding B: inevitability breaks.
  l.add_transition(0, "C", 0);
  EXPECT_FALSE(check(l, inevitable(act("B"))));
}

TEST(Properties, InevitableFalsifiedByDeadlock) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);  // deadlock before doing B
  EXPECT_FALSE(check(l, inevitable(act("B"))));
}

TEST(Properties, Never) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "GOOD", 1);
  l.add_transition(1, "GOOD", 0);
  EXPECT_TRUE(check(l, never(act("BAD*"))));
  l.add_transition(1, "BAD !1", 0);
  EXPECT_FALSE(check(l, never(act("BAD*"))));
}

TEST(Properties, Response) {
  // REQ then always eventually ACK.
  Lts l;
  l.add_states(2);
  l.add_transition(0, "REQ", 1);
  l.add_transition(1, "ACK", 0);
  EXPECT_TRUE(check(l, response(act("REQ"), act("ACK"))));
  // A REQ that can loop forever without ACK violates response.
  Lts m;
  m.add_states(2);
  m.add_transition(0, "REQ", 1);
  m.add_transition(1, "WORK", 1);
  m.add_transition(1, "ACK", 0);
  EXPECT_FALSE(check(m, response(act("REQ"), act("ACK"))));
}

TEST(Properties, StandardBattery) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 0);
  const auto results = standard_battery(
      l, {{"can do B", can_do(act("B"))}, {"never C", never(act("C"))}});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].name, "deadlock freedom");
  EXPECT_TRUE(results[0].holds);
  EXPECT_TRUE(results[1].holds);  // livelock freedom
  EXPECT_TRUE(results[2].holds);
  EXPECT_TRUE(results[3].holds);
}

TEST(Properties, StandardBatteryFindsDefects) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);  // 1 deadlocks
  l.add_transition(0, "i", 2);
  l.add_transition(2, "i", 2);  // livelock
  const auto results = standard_battery(l);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].holds);
  EXPECT_FALSE(results[1].holds);
  EXPECT_NE(results[0].detail.find("deadlock"), std::string::npos);
}

TEST(Properties, FormulaToStringIsReadable) {
  const auto f = deadlock_freedom();
  EXPECT_EQ(f->to_string(), "nu X. (<any> tt && [any] X)");
}

TEST(Properties, FreeVars) {
  const auto open = f_and(var("X"), mu("Y", var("Y")));
  const auto fv = open->free_vars();
  ASSERT_EQ(fv.size(), 1u);
  EXPECT_EQ(fv[0], "X");
  EXPECT_TRUE(deadlock_freedom()->free_vars().empty());
}

}  // namespace
