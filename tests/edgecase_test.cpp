// Targeted edge-case coverage across modules: empty systems, degenerate
// compositions, boundary parameters and error paths that the main suites
// do not reach.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bisim/equivalence.hpp"
#include "bisim/trace.hpp"
#include "compose/pipeline.hpp"
#include "imc/compose.hpp"
#include "imc/imc_io.hpp"
#include "imc/lump.hpp"
#include "lts/analysis.hpp"
#include "lts/lts_io.hpp"
#include "lts/product.hpp"
#include "markov/absorption.hpp"
#include "markov/dtmc.hpp"
#include "markov/rewards.hpp"
#include "markov/transient.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "phase/phase_type.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace multival;
using lts::Lts;

// --- empty and single-state systems ----------------------------------------------

TEST(EdgeCases, EmptyLtsEverywhere) {
  Lts empty;
  EXPECT_EQ(lts::trim(empty).lts.num_states(), 0u);
  EXPECT_TRUE(lts::deadlock_states(empty).empty());
  EXPECT_FALSE(lts::has_tau_cycle(empty));
  EXPECT_EQ(bisim::minimize(empty, bisim::Equivalence::kStrong)
                .quotient.num_states(),
            0u);
  EXPECT_EQ(bisim::determinize(empty).num_states(), 0u);
  EXPECT_TRUE(mc::check(empty, mc::deadlock_freedom()));
  // Two empty systems are equivalent under every notion.
  EXPECT_TRUE(bisim::equivalent(empty, empty, bisim::Equivalence::kWeak));
}

TEST(EdgeCases, SingleStateNoTransitions) {
  Lts one;
  one.add_state();
  EXPECT_FALSE(mc::check(one, mc::deadlock_freedom()));
  const auto r = bisim::minimize(one, bisim::Equivalence::kBranching);
  EXPECT_EQ(r.quotient.num_states(), 1u);
  EXPECT_EQ(lts::to_aut(r.quotient), "des (0, 0, 1)\n");
}

TEST(EdgeCases, EmptyImc) {
  imc::Imc empty;
  EXPECT_EQ(imc::maximal_progress(empty).num_states(), 0u);
  EXPECT_EQ(imc::hide_all(empty).num_states(), 0u);
  EXPECT_EQ(imc::trim(empty).num_states(), 0u);
  EXPECT_EQ(imc::lump_strong(empty).num_blocks(), 0u);
  const auto e = imc::to_ctmc(empty);
  EXPECT_EQ(e.ctmc.num_states(), 0u);
}

// --- composition corners -----------------------------------------------------------

TEST(EdgeCases, ParallelWithSelf) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "A", 0);
  const std::vector<std::string> sync{"A"};
  const Lts p = lts::parallel(l, l, sync);
  // Fully synchronised with itself: isomorphic to the original.
  EXPECT_TRUE(bisim::equivalent(p, l, bisim::Equivalence::kStrong));
}

TEST(EdgeCases, HideEverythingThenMinimise) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 2);
  l.add_transition(2, "C", 0);
  const std::vector<std::string> none{};
  const Lts h = lts::hide_all_but(l, none);
  // All tau, one cycle: divergence-blind branching collapses to one silent
  // state; divergence-sensitive keeps the livelock visible as a tau loop.
  const auto blind = bisim::minimize(h, bisim::Equivalence::kBranching);
  EXPECT_EQ(blind.quotient.num_states(), 1u);
  EXPECT_EQ(blind.quotient.num_transitions(), 0u);
  const auto div =
      bisim::minimize(h, bisim::Equivalence::kDivergenceBranching);
  EXPECT_EQ(div.quotient.num_transitions(), 1u);
}

TEST(EdgeCases, RenameToExistingGateMergesLabels) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "B", 1);
  const Lts r = lts::rename(l, {{"A", "B"}});
  const auto used = lts::used_actions(r);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(r.actions().name(used[0]), "B");
}

TEST(EdgeCases, ImcParallelPreservesMarkovianLabels) {
  imc::Imc a;
  a.add_states(2);
  a.add_markovian(0, 1.5, 1, "probe");
  imc::Imc b;
  b.add_states(1);
  const std::vector<std::string> none{};
  const imc::Imc p = imc::parallel(a, b, none);
  ASSERT_EQ(p.markovian(p.initial_state()).size(), 1u);
  EXPECT_EQ(p.markovian(p.initial_state())[0].label, "probe");
}

// --- compose pipeline corners ----------------------------------------------------------

TEST(EdgeCases, PipelineSingleLeaf) {
  Lts l;
  l.add_states(1);
  l.add_transition(0, "A", 0);
  compose::EvalStats stats;
  const Lts out =
      compose::evaluate(compose::leaf(l, "only"), true, &stats);
  EXPECT_EQ(out.num_states(), 1u);
  EXPECT_EQ(stats.peak_states, 1u);
  ASSERT_EQ(stats.steps.size(), 1u);
  EXPECT_EQ(stats.steps[0].description, "generate only");
}

TEST(EdgeCases, MinimizeNodeIsNoOpWithoutFlag) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "i", 1);
  l.add_transition(1, "A", 1);
  auto tree = compose::minimize_here(compose::leaf(l, "x"));
  const Lts kept = compose::evaluate(tree, false);
  EXPECT_EQ(kept.num_states(), 2u);
  const Lts reduced = compose::evaluate(tree, true);
  EXPECT_EQ(reduced.num_states(), 1u);
}

// --- solver corners ------------------------------------------------------------------------

TEST(EdgeCases, SingleAbsorbingStateChain) {
  markov::Ctmc c;
  c.add_state();
  const auto pi = markov::steady_state(c);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
  EXPECT_DOUBLE_EQ(markov::expected_absorption_time_from_initial(c), 0.0);
  EXPECT_DOUBLE_EQ(markov::absorption_probability_by(c, 1.0), 1.0);
}

TEST(EdgeCases, TransientAtHugeRateGap) {
  // Stiff chain: rates spanning 5 orders of magnitude still give a valid
  // distribution (uniformisation handles the gap).
  markov::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1e4);
  c.add_transition(1, 2, 0.1);
  const auto pi = markov::transient_distribution(c, 1.0);
  double sum = 0.0;
  for (const double p : pi) {
    EXPECT_GE(p, -1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EdgeCases, RewardsOnAbsorbingInitialState) {
  markov::Ctmc c;
  c.add_states(2);
  c.add_transition(1, 0, 1.0);  // initial state 0 already absorbing
  const std::vector<double> unit(2, 1.0);
  EXPECT_DOUBLE_EQ(markov::expected_accumulated_reward(c, unit)[0], 0.0);
  EXPECT_DOUBLE_EQ(markov::expected_transition_count(c, "*")[0], 0.0);
}

TEST(EdgeCases, DtmcSingleState) {
  const markov::Dtmc d(
      markov::SparseMatrix::from_triplets(1, 1, {{0, 0, 1.0}}), {1.0});
  EXPECT_DOUBLE_EQ(d.stationary()[0], 1.0);
  EXPECT_DOUBLE_EQ(d.distribution_after(10)[0], 1.0);
}

// --- phase-type corners ---------------------------------------------------------------------

TEST(EdgeCases, ErlangOneIsExponential) {
  const auto e1 = phase::PhaseType::erlang(1, 3.0);
  const auto ex = phase::PhaseType::exponential(3.0);
  EXPECT_DOUBLE_EQ(e1.mean(), ex.mean());
  EXPECT_DOUBLE_EQ(e1.cv2(), ex.cv2());
  EXPECT_NEAR(e1.cdf(0.7), ex.cdf(0.7), 1e-12);
}

TEST(EdgeCases, HypoSingleStage) {
  const auto h = phase::PhaseType::hypoexponential({2.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.5);
  EXPECT_DOUBLE_EQ(h.cv2(), 1.0);
}

// --- simulator corners -----------------------------------------------------------------------

TEST(EdgeCases, SimulatorOnAbsorbingChainStopsCleanly) {
  markov::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 5.0);
  sim::SimOptions opts;
  opts.horizon = 100.0;
  opts.batches = 5;
  const std::vector<double> reward{0.0, 1.0};
  // Once absorbed, the remaining time accrues reward 1: the long-run mean
  // is ~1.
  const auto e = sim::simulate_steady_reward(c, reward, opts);
  EXPECT_GT(e.mean, 0.95);
}

TEST(EdgeCases, SimulatorRejectsSingleBatch) {
  markov::Ctmc c;
  c.add_state();
  sim::SimOptions opts;
  opts.batches = 1;
  const std::vector<double> r{1.0};
  EXPECT_THROW((void)sim::simulate_steady_reward(c, r, opts),
               std::invalid_argument);
}

// --- IMC I/O corner -----------------------------------------------------------------------------

TEST(EdgeCases, ImcIoLabelContainingSemicolonRoundTrips) {
  imc::Imc m;
  m.add_states(2);
  m.add_markovian(0, 2.0, 1, "POP !1");
  const imc::Imc back = imc::from_aut(imc::to_aut(m));
  ASSERT_EQ(back.num_markovian(), 1u);
  EXPECT_EQ(back.markovian(0)[0].label, "POP !1");
  EXPECT_DOUBLE_EQ(back.markovian(0)[0].rate, 2.0);
}

}  // namespace
