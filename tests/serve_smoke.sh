#!/bin/sh
# Socket smoke test for `multival_cli serve` / `multival_cli client`:
# start a server, solve, solve the same model again (cache hit), read the
# stats table, then shut the server down and check it exits cleanly.
set -eu

CLI="$1"
DIR=$(mktemp -d)
SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ]; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

SOCK="$DIR/mv.sock"
cat > "$DIR/model.imc" <<'EOF'
des (0, 4, 4)
(0, "rate 1.0", 1)
(1, "rate 2.0", 0)
(1, "STEP; rate 1.0", 2)
(2, "rate 4.0", 3)
EOF

"$CLI" serve --socket "$SOCK" -j 2 &
SERVER_PID=$!

# The client's built-in exponential-backoff connect retry replaces any
# sleep-and-poll loop: the first call waits for the socket to appear.
"$CLI" client --socket "$SOCK" --retry-ms 10000 ping | grep -q pong

FIRST=$("$CLI" client --socket "$SOCK" reach "$DIR/model.imc")
SECOND=$("$CLI" client --socket "$SOCK" reach "$DIR/model.imc")
if [ "$FIRST" != "$SECOND" ]; then
  echo "duplicate solve differs: '$FIRST' vs '$SECOND'" >&2
  exit 1
fi
case "$FIRST" in
  *"P[reach absorbing]"*) ;;
  *) echo "unexpected solve output: $FIRST" >&2; exit 1 ;;
esac

"$CLI" client --socket "$SOCK" stats | grep -q "cache hits"

"$CLI" client --socket "$SOCK" shutdown | grep -q bye
wait "$SERVER_PID"
SERVER_PID=

echo "serve smoke test passed"
