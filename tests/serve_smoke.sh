#!/bin/sh
# Socket smoke test for `multival_cli serve` / `multival_cli client`:
# start a server, solve, solve the same model again (cache hit), read the
# stats table, then shut the server down and check it exits cleanly.
# The pass runs twice — once over a Unix-domain socket, once over TCP on
# an ephemeral port — and asserts both transports serve byte-identical
# bodies for the same model.
set -eu

CLI="$1"
DIR=$(mktemp -d)
SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ]; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

cat > "$DIR/model.imc" <<'EOF'
des (0, 4, 4)
(0, "rate 1.0", 1)
(1, "rate 2.0", 0)
(1, "STEP; rate 1.0", 2)
(2, "rate 4.0", 3)
EOF

# run_pass <endpoint> <result-file>: ping, duplicate solve, stats, shutdown.
run_pass() {
  EP="$1"
  OUT="$2"

  # The client's built-in exponential-backoff connect retry replaces any
  # sleep-and-poll loop: the first call waits for the endpoint to appear.
  "$CLI" client --socket "$EP" --retry-ms 10000 ping | grep -q pong

  FIRST=$("$CLI" client --socket "$EP" reach "$DIR/model.imc")
  SECOND=$("$CLI" client --socket "$EP" reach "$DIR/model.imc")
  if [ "$FIRST" != "$SECOND" ]; then
    echo "duplicate solve differs: '$FIRST' vs '$SECOND'" >&2
    exit 1
  fi
  case "$FIRST" in
    *"P[reach absorbing]"*) ;;
    *) echo "unexpected solve output: $FIRST" >&2; exit 1 ;;
  esac
  printf '%s\n' "$FIRST" > "$OUT"

  "$CLI" client --socket "$EP" stats | grep -q "cache hits"

  "$CLI" client --socket "$EP" shutdown | grep -q bye
  wait "$SERVER_PID"
  SERVER_PID=
}

# Pass 1: Unix-domain socket.
SOCK="$DIR/mv.sock"
"$CLI" serve --socket "$SOCK" -j 2 &
SERVER_PID=$!
run_pass "$SOCK" "$DIR/unix.out"

# Pass 2: TCP on an ephemeral port.  `serve` prints the bound endpoint
# ("serving on 127.0.0.1:NNNNN") so the port never races another job.
"$CLI" serve --socket 127.0.0.1:0 -j 2 > "$DIR/serve_tcp.log" &
SERVER_PID=$!
TCP_EP=
for _ in $(seq 1 100); do
  TCP_EP=$(sed -n 's/^serving on \(127\.0\.0\.1:[0-9][0-9]*\)$/\1/p' \
           "$DIR/serve_tcp.log")
  [ -n "$TCP_EP" ] && break
  sleep 0.1
done
if [ -z "$TCP_EP" ]; then
  echo "TCP server never reported its bound endpoint" >&2
  exit 1
fi
run_pass "$TCP_EP" "$DIR/tcp.out"

if ! cmp -s "$DIR/unix.out" "$DIR/tcp.out"; then
  echo "TCP and Unix transports served different bodies" >&2
  exit 1
fi

echo "serve smoke test passed (unix + tcp)"
