// Tests for the src/serve subsystem: canonical content hashing, the
// two-tier result cache, the wire protocol, the coalescing job scheduler
// (bitwise-identical served results, backpressure, deadlines) and the
// Unix-domain-socket front end.
//
// Every suite here is named Serve* so the CI thread-sanitizer job can run
// the whole subsystem with --gtest_filter='Serve*'.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <semaphore>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compose/pipeline.hpp"
#include "lts/lts_io.hpp"
#include "serve/cache.hpp"
#include "serve/hash.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/solvers.hpp"

namespace {

using namespace multival;

// A deterministic IMC (one closed CTMC): 0 -> 1 -> {0 or absorbing 2}.
constexpr const char* kCtmcModel =
    "des (0, 4, 4)\n"
    "(0, \"rate 1.0\", 1)\n"
    "(1, \"rate 2.0\", 0)\n"
    "(1, \"STEP; rate 1.0\", 2)\n"
    "(2, \"rate 4.0\", 3)\n";

// A nondeterministic IMC: an interactive choice between a slow and a fast
// path to the absorbing state 3.
constexpr const char* kNondetModel =
    "des (0, 4, 4)\n"
    "(0, \"a\", 1)\n"
    "(0, \"b\", 2)\n"
    "(1, \"rate 1.0\", 3)\n"
    "(2, \"rate 2.0\", 3)\n";

// A small LTS with a reachable deadlock (state 2).
constexpr const char* kLtsModel =
    "des (0, 3, 3)\n"
    "(0, \"PUSH\", 1)\n"
    "(1, \"POP\", 0)\n"
    "(1, \"DROP\", 2)\n";

serve::Request make_request(serve::Verb verb, std::string payload,
                            std::string arg = "", std::uint64_t id = 1) {
  serve::Request r;
  r.id = id;
  r.verb = verb;
  r.arg = std::move(arg);
  r.payload = std::move(payload);
  return r;
}

// --- hashing -------------------------------------------------------------

TEST(ServeHash, IndependentOfLabelInterningOrder) {
  lts::Lts a;
  a.add_states(2);
  a.set_initial_state(0);
  a.add_transition(0, "X", 1);

  lts::Lts b;
  b.add_states(2);
  b.set_initial_state(0);
  b.actions().intern("UNUSED");  // shifts every later ActionId
  b.add_transition(0, "X", 1);

  serve::Hasher ha;
  serve::Hasher hb;
  serve::hash_append(ha, a);
  serve::hash_append(hb, b);
  EXPECT_EQ(ha.key(), hb.key());
}

TEST(ServeHash, DistinguishesModelsAndFieldBoundaries) {
  lts::Lts a;
  a.add_states(2);
  a.set_initial_state(0);
  a.add_transition(0, "X", 1);

  lts::Lts b = a;
  b.add_transition(0, "X", 0);

  serve::Hasher ha;
  serve::Hasher hb;
  serve::hash_append(ha, a);
  serve::hash_append(hb, b);
  EXPECT_NE(ha.key(), hb.key());

  serve::Hasher h1;
  h1.str("ab");
  h1.str("c");
  serve::Hasher h2;
  h2.str("a");
  h2.str("bc");
  EXPECT_NE(h1.key(), h2.key());
}

TEST(ServeHash, HexIsStable) {
  serve::Hasher h;
  h.str("hello");
  const serve::CacheKey k = h.key();
  EXPECT_EQ(k.hex().size(), 32u);
  EXPECT_EQ(k.hex(), h.key().hex());
}

// --- result cache --------------------------------------------------------

TEST(ServeCache, LruEvictsLeastRecentlyUsed) {
  serve::ResultCache::Options opts;
  opts.capacity_bytes = 3 * (128 + 8);  // three entries of 8 payload bytes
  serve::ResultCache cache(opts);
  const auto key = [](int i) {
    serve::Hasher h;
    h.u64(static_cast<std::uint64_t>(i));
    return h.key();
  };
  cache.insert(key(1), "11111111");
  cache.insert(key(2), "22222222");
  cache.insert(key(3), "33333333");
  ASSERT_TRUE(cache.lookup(key(1)).has_value());  // 1 is now most recent
  cache.insert(key(4), "44444444");               // evicts 2
  EXPECT_FALSE(cache.lookup(key(2)).has_value());
  EXPECT_TRUE(cache.lookup(key(1)).has_value());
  EXPECT_TRUE(cache.lookup(key(4)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeCache, DiskTierSurvivesANewCacheInstance) {
  const std::string dir = testing::TempDir() + "serve_cache_disk";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("disk-key");
  const serve::CacheKey key = h.key();
  {
    serve::ResultCache cache(opts);
    cache.insert(key, "persisted payload\nwith newline");
    EXPECT_EQ(cache.stats().disk_writes, 1u);
  }
  serve::ResultCache fresh(opts);
  const auto hit = fresh.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "persisted payload\nwith newline");
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  // Promoted into memory: a second lookup does not touch the disk tier.
  ASSERT_TRUE(fresh.lookup(key).has_value());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
}

TEST(ServeCache, CorruptDiskEntryIsAMissNotAnError) {
  const std::string dir = testing::TempDir() + "serve_cache_corrupt";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("corrupt-key");
  const serve::CacheKey key = h.key();
  {
    std::ofstream os(dir + "/" + key.hex() + ".mvcr", std::ios::binary);
    os << "MVCR\x01 this is not a valid record stream";
  }
  serve::ResultCache cache(opts);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ServeCache, ConcurrentWritersOfSameKeyPublishExactlyOnce) {
  // Many writers racing on the same key must never leave a torn entry on
  // disk: each writes a private tmp file and publishes it with an atomic
  // rename, so whichever rename lands last, readers see one complete file.
  const std::string dir = testing::TempDir() + "serve_cache_race";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("contended-key");
  const serve::CacheKey key = h.key();
  const std::string payload(64 * 1024, 'x');  // big enough to tear if unsynced

  constexpr int kWriters = 8;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      // Separate instances so every insert goes through the disk path (a
      // shared instance would dedup in the memory tier before writing).
      serve::ResultCache cache(opts);
      cache.insert(key, payload);
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }

  // Exactly one published file for the key, no leftover tmp files.
  std::size_t published = 0;
  std::size_t leftovers = 0;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") {
        continue;
      }
      if (name.find(".tmp") != std::string::npos) {
        ++leftovers;
      } else {
        ++published;
      }
    }
    ::closedir(d);
  }
  EXPECT_EQ(published, 1u);
  EXPECT_EQ(leftovers, 0u);

  serve::ResultCache reader(opts);
  const auto hit = reader.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  EXPECT_EQ(reader.stats().disk_errors, 0u);
}

TEST(ServeCache, TruncatedDiskEntryIsAMissAndCountsAsCorrupt) {
  const std::string dir = testing::TempDir() + "serve_cache_trunc";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("truncated-key");
  const serve::CacheKey key = h.key();
  {
    serve::ResultCache cache(opts);
    cache.insert(key, std::string(4096, 'y'));
  }
  const std::string path = dir + "/" + key.hex() + ".mvcr";
  ::truncate(path.c_str(), 100);  // cut mid-payload, after a valid header

  serve::ResultCache cache(opts);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The entry stays a miss rather than resurrecting as garbage.
  EXPECT_FALSE(cache.lookup(key).has_value());
}

// --- protocol ------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsWithEmbeddedSeparators) {
  serve::Request r = make_request(serve::Verb::kCheck,
                                  "line1\nline2\twith tab\\backslash",
                                  "nu X. (<any> tt && [any] X)", 42);
  r.deadline = std::chrono::milliseconds(1500);
  const std::string line = serve::encode_request(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const serve::Request back = serve::decode_request(line);
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.verb, serve::Verb::kCheck);
  EXPECT_EQ(back.deadline.count(), 1500);
  EXPECT_EQ(back.arg, r.arg);
  EXPECT_EQ(back.payload, r.payload);
}

TEST(ServeProtocol, ResponseRoundTrips) {
  const serve::Response r{7, serve::Status::kOverloaded, "queue full"};
  const serve::Response back = serve::decode_response(serve::encode_response(r));
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.status, serve::Status::kOverloaded);
  EXPECT_EQ(back.body, "queue full");
}

TEST(ServeProtocol, RejectsMalformedLines) {
  EXPECT_THROW((void)serve::decode_request("not a protocol line"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::decode_request("mv1\tx\tping\t0\t\t"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::decode_request("mv1\t1\tfrobnicate\t0\t\t"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::decode_response("mv1\t1\tok"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::unescape_field("dangling\\"),
               serve::ProtocolError);
}

// --- service: served == direct, bitwise ----------------------------------

void expect_served_matches_direct(const serve::Request& request) {
  const std::string direct = serve::solve_request(request);
  for (unsigned workers : {1u, 4u}) {
    serve::ServiceOptions opts;
    opts.workers = workers;
    serve::Service service(opts);
    const serve::Response response = service.evaluate(request);
    EXPECT_EQ(response.status, serve::Status::kOk) << response.body;
    EXPECT_EQ(response.body, direct) << "workers=" << workers;
  }
}

TEST(ServeService, CtmcReachabilityMatchesDirectSolveBitwise) {
  expect_served_matches_direct(make_request(serve::Verb::kReach, kCtmcModel));
  expect_served_matches_direct(
      make_request(serve::Verb::kReach, kCtmcModel, "0.5"));
}

TEST(ServeService, ImcIntervalBoundsMatchDirectSolveBitwise) {
  expect_served_matches_direct(
      make_request(serve::Verb::kBounds, kNondetModel));
}

TEST(ServeService, McFormulaMatchesDirectSolveBitwise) {
  expect_served_matches_direct(make_request(
      serve::Verb::kCheck, kLtsModel, "nu X. (<any> tt && [any] X)"));
  expect_served_matches_direct(
      make_request(serve::Verb::kCheck, kLtsModel, "<'PUSH'> tt"));
}

TEST(ServeService, ThroughputMatchesDirectSolveBitwise) {
  // Ergodic variant (no absorbing state) so the steady state is nontrivial.
  const std::string model =
      "des (0, 3, 3)\n"
      "(0, \"rate 1.0\", 1)\n"
      "(1, \"STEP; rate 2.0\", 2)\n"
      "(2, \"rate 3.0\", 0)\n";
  expect_served_matches_direct(
      make_request(serve::Verb::kThroughput, model, "STEP*"));
}

// --- service: cache, coalescing, backpressure, deadlines -----------------

TEST(ServeService, SecondIdenticalRequestHitsTheCache) {
  serve::ServiceOptions opts;
  opts.workers = 2;
  serve::Service service(opts);
  const serve::Request r = make_request(serve::Verb::kReach, kCtmcModel);
  const serve::Response first = service.evaluate(r);
  const serve::Response second = service.evaluate(r);
  ASSERT_EQ(first.status, serve::Status::kOk) << first.body;
  EXPECT_EQ(first.body, second.body);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.solves, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.completed_ok, 2u);
}

TEST(ServeService, EquivalentAutRenderingsShareOneCacheEntry) {
  serve::ServiceOptions opts;
  opts.workers = 1;
  serve::Service service(opts);
  // Same model, different textual spacing: the key hashes the parsed IMC.
  const std::string variant =
      "des (0, 4, 4)\n"
      "(0,\"rate 1.0\",1)\n"
      "(1,\"rate 2.0\",0)\n"
      "(1,\"STEP; rate 1.0\",2)\n"
      "(2,\"rate 4.0\",3)\n";
  (void)service.evaluate(make_request(serve::Verb::kReach, kCtmcModel));
  (void)service.evaluate(make_request(serve::Verb::kReach, variant));
  EXPECT_EQ(service.metrics().solves, 1u);
  EXPECT_EQ(service.metrics().cache_hits, 1u);
}

TEST(ServeService, ConcurrentIdenticalRequestsCoalesceIntoOneSolve) {
  constexpr int kDuplicates = 8;
  std::counting_semaphore<kDuplicates + 1> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  const serve::Request r = make_request(serve::Verb::kReach, kCtmcModel);
  std::vector<std::shared_future<serve::Response>> futures;
  futures.reserve(kDuplicates);
  for (int i = 0; i < kDuplicates; ++i) {
    futures.push_back(service.submit(r));
  }
  gate.release();  // let the single worker run the one coalesced flight
  std::vector<std::string> bodies;
  for (auto& f : futures) {
    const serve::Response resp = f.get();
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.body;
    bodies.push_back(resp.body);
  }
  for (const std::string& body : bodies) {
    EXPECT_EQ(body, bodies.front());
  }
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.solves, 1u);
  EXPECT_EQ(m.coalesced, static_cast<std::uint64_t>(kDuplicates - 1));
  EXPECT_EQ(m.cache_hits, 0u);
}

// Saturation stress: a single blocked worker, a two-slot queue and a flood
// of distinct requests.  Excess requests must be shed immediately with an
// explicit kOverloaded status (never queued unboundedly, never deadlocked).
// This test runs under TSan in CI.
TEST(ServeService, QueueSaturationShedsWithExplicitOverloadedStatus) {
  constexpr int kFlood = 12;
  std::counting_semaphore<kFlood + 1> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  std::vector<std::shared_future<serve::Response>> futures;
  for (int i = 0; i < kFlood; ++i) {
    // Distinct models (different rates) -> distinct keys -> no coalescing.
    const std::string model = "des (0, 1, 2)\n(0, \"rate " +
                              std::to_string(i + 1) + ".0\", 1)\n";
    futures.push_back(
        service.submit(make_request(serve::Verb::kReach, model)));
  }
  gate.release(kFlood);
  int ok = 0;
  int overloaded = 0;
  for (auto& f : futures) {
    const serve::Response resp = f.get();  // must not deadlock
    if (resp.status == serve::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, serve::Status::kOverloaded) << resp.body;
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kFlood);
  EXPECT_GE(overloaded, 1);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.shed, static_cast<std::uint64_t>(overloaded));
  EXPECT_EQ(m.solves, static_cast<std::uint64_t>(ok));
}

TEST(ServeService, QueuedRequestPastItsDeadlineTimesOut) {
  std::counting_semaphore<4> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  auto blocker = service.submit(make_request(serve::Verb::kReach, kCtmcModel));
  serve::Request urgent = make_request(serve::Verb::kBounds, kNondetModel);
  urgent.deadline = std::chrono::milliseconds(1);
  auto doomed = service.submit(urgent);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.release(2);
  EXPECT_EQ(blocker.get().status, serve::Status::kOk);
  const serve::Response resp = doomed.get();
  EXPECT_EQ(resp.status, serve::Status::kTimeout) << resp.body;
  EXPECT_EQ(service.metrics().timed_out, 1u);
}

TEST(ServeService, MalformedPayloadIsInvalidWithoutTouchingTheQueue) {
  serve::Service service;
  const serve::Response resp =
      service.evaluate(make_request(serve::Verb::kReach, "des (not aut"));
  EXPECT_EQ(resp.status, serve::Status::kInvalid);
  EXPECT_NE(resp.body.find("MV010"), std::string::npos);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.solves, 0u);
}

TEST(ServeService, NondetImcOnReachIsInvalidWithAnActionableHint) {
  // reach/throughput need a deterministic closed chain; a nondeterministic
  // IMC can never satisfy them, so the pre-flight lint rejects it with the
  // MV013 diagnostic pointing at 'bounds' instead of failing in a worker.
  serve::Service service;
  const serve::Response resp =
      service.evaluate(make_request(serve::Verb::kReach, kNondetModel));
  EXPECT_EQ(resp.status, serve::Status::kInvalid);
  EXPECT_NE(resp.body.find("MV013"), std::string::npos);
  EXPECT_NE(resp.body.find("bounds"), std::string::npos);
  // The same model is perfectly valid for the bounds verb.
  EXPECT_EQ(service.evaluate(make_request(serve::Verb::kBounds, kNondetModel))
                .status,
            serve::Status::kOk);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.solves, 1u);
}

TEST(ServeService, ControlVerbsAreHandledInline) {
  serve::Service service;
  EXPECT_EQ(service.evaluate(make_request(serve::Verb::kPing, "")).body,
            "pong");
  const serve::Response stats =
      service.evaluate(make_request(serve::Verb::kStats, ""));
  EXPECT_EQ(stats.status, serve::Status::kOk);
  EXPECT_NE(stats.body.find("serve metrics"), std::string::npos);
  EXPECT_EQ(service.evaluate(make_request(serve::Verb::kShutdown, "")).status,
            serve::Status::kError);
}

// --- pipeline minimisation cache -----------------------------------------

lts::Lts chain_with_twin_tail(int tag) {
  // 0 -A-> 1 -B-> 2 and 0 -A-> 3 -B-> 4: states {1,3} and {2,4} are
  // bisimilar, so branching minimisation shrinks 5 -> 3 states.
  lts::Lts l;
  l.add_states(5);
  l.set_initial_state(0);
  const std::string a = "A" + std::to_string(tag);
  l.add_transition(0, a, 1);
  l.add_transition(0, a, 3);
  l.add_transition(1, "B", 2);
  l.add_transition(3, "B", 4);
  return l;
}

TEST(ServePipelineCache, OnlyChangedSubtreesAreReminimised) {
  serve::PipelineCache cache;
  const auto tree = [](int left_tag, int right_tag) {
    return compose::compose2(
        compose::minimize_here(
            compose::leaf(chain_with_twin_tail(left_tag), "left")),
        {},
        compose::minimize_here(
            compose::leaf(chain_with_twin_tail(right_tag), "right")));
  };

  compose::EvalStats s1;
  const lts::Lts first = compose::evaluate(tree(0, 1), true, &s1, &cache);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);

  // Re-evaluating with one changed leaf re-minimises only that subtree.
  compose::EvalStats s2;
  const lts::Lts second = compose::evaluate(tree(0, 2), true, &s2, &cache);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  bool saw_cached_step = false;
  for (const compose::StepStat& step : s2.steps) {
    saw_cached_step =
        saw_cached_step ||
        step.description.find("(cached)") != std::string::npos;
  }
  EXPECT_TRUE(saw_cached_step);

  // Cached evaluation must be indistinguishable from the uncached one.
  const lts::Lts direct = compose::evaluate(tree(0, 2), true);
  EXPECT_EQ(lts::to_aut(second), lts::to_aut(direct));
  EXPECT_EQ(lts::to_aut(first), lts::to_aut(compose::evaluate(tree(0, 1), true)));
}

// --- socket front end ----------------------------------------------------

TEST(ServeSocket, EndToEndSolveDuplicateStatsShutdown) {
  const std::string socket_path =
      "/tmp/mvserve_test_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.socket_path = socket_path;
  opts.service.workers = 2;
  serve::Server server(opts);
  std::thread server_thread([&server] { server.run(); });

  {
    serve::Client client(socket_path);
    EXPECT_EQ(client.call(make_request(serve::Verb::kPing, "")).body, "pong");

    const serve::Request solve =
        make_request(serve::Verb::kReach, kCtmcModel, "", 11);
    const serve::Response first = client.call(solve);
    ASSERT_EQ(first.status, serve::Status::kOk) << first.body;
    EXPECT_EQ(first.id, 11u);
    EXPECT_EQ(first.body, serve::solve_request(solve));

    const serve::Response dup = client.call(solve);
    EXPECT_EQ(dup.body, first.body);

    const serve::Response stats =
        client.call(make_request(serve::Verb::kStats, ""));
    EXPECT_NE(stats.body.find("cache hits"), std::string::npos);

    const serve::Response bye =
        client.call(make_request(serve::Verb::kShutdown, ""));
    EXPECT_EQ(bye.status, serve::Status::kOk);
  }
  server_thread.join();
  const serve::ServiceMetrics m = server.service().metrics();
  EXPECT_EQ(m.solves, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
}

TEST(ServeSocket, MalformedModelGetsDiagnosticsNotTimeout) {
  // A client submitting garbage must get the lint diagnostics back as an
  // immediate 'invalid' response — not kError, and certainly not a
  // kTimeout after its deadline silently expired in the queue.
  const std::string socket_path =
      "/tmp/mvserve_invalid_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.socket_path = socket_path;
  opts.service.workers = 1;
  serve::Server server(opts);
  std::thread server_thread([&server] { server.run(); });

  {
    serve::Client client(socket_path);
    serve::Request bad =
        make_request(serve::Verb::kReach, "des (garbage", "", 7);
    bad.deadline = std::chrono::milliseconds(60000);
    const serve::Response resp = client.call(bad);
    EXPECT_EQ(resp.status, serve::Status::kInvalid);
    EXPECT_EQ(resp.id, 7u);
    EXPECT_NE(resp.body.find("MV010"), std::string::npos)
        << "body should carry the structured diagnostic, got: " << resp.body;
    EXPECT_NE(resp.body.find("malformed .aut model"), std::string::npos);

    const serve::Response bye =
        client.call(make_request(serve::Verb::kShutdown, ""));
    EXPECT_EQ(bye.status, serve::Status::kOk);
  }
  server_thread.join();
  const serve::ServiceMetrics m = server.service().metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.timed_out, 0u);
  EXPECT_EQ(m.solves, 0u);
}

}  // namespace
