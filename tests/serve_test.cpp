// Tests for the src/serve subsystem: canonical content hashing, the
// two-tier result cache, the wire protocol, the coalescing/batching job
// scheduler (bitwise-identical served results, backpressure, deadlines),
// the Unix-domain and TCP socket front ends, the client receive deadline
// and the consistent-hash replica router.
//
// Every suite here is named Serve* so the CI thread-sanitizer job can run
// the whole subsystem with --gtest_filter='Serve*'.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <ctime>
#include <fstream>
#include <semaphore>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compose/pipeline.hpp"
#include "lts/lts_io.hpp"
#include "serve/cache.hpp"
#include "serve/hash.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/solvers.hpp"

namespace {

using namespace multival;

// A deterministic IMC (one closed CTMC): 0 -> 1 -> {0 or absorbing 2}.
constexpr const char* kCtmcModel =
    "des (0, 4, 4)\n"
    "(0, \"rate 1.0\", 1)\n"
    "(1, \"rate 2.0\", 0)\n"
    "(1, \"STEP; rate 1.0\", 2)\n"
    "(2, \"rate 4.0\", 3)\n";

// A nondeterministic IMC: an interactive choice between a slow and a fast
// path to the absorbing state 3.
constexpr const char* kNondetModel =
    "des (0, 4, 4)\n"
    "(0, \"a\", 1)\n"
    "(0, \"b\", 2)\n"
    "(1, \"rate 1.0\", 3)\n"
    "(2, \"rate 2.0\", 3)\n";

// A small LTS with a reachable deadlock (state 2).
constexpr const char* kLtsModel =
    "des (0, 3, 3)\n"
    "(0, \"PUSH\", 1)\n"
    "(1, \"POP\", 0)\n"
    "(1, \"DROP\", 2)\n";

serve::Request make_request(serve::Verb verb, std::string payload,
                            std::string arg = "", std::uint64_t id = 1) {
  serve::Request r;
  r.id = id;
  r.verb = verb;
  r.arg = std::move(arg);
  r.payload = std::move(payload);
  return r;
}

// --- hashing -------------------------------------------------------------

TEST(ServeHash, IndependentOfLabelInterningOrder) {
  lts::Lts a;
  a.add_states(2);
  a.set_initial_state(0);
  a.add_transition(0, "X", 1);

  lts::Lts b;
  b.add_states(2);
  b.set_initial_state(0);
  b.actions().intern("UNUSED");  // shifts every later ActionId
  b.add_transition(0, "X", 1);

  serve::Hasher ha;
  serve::Hasher hb;
  serve::hash_append(ha, a);
  serve::hash_append(hb, b);
  EXPECT_EQ(ha.key(), hb.key());
}

TEST(ServeHash, DistinguishesModelsAndFieldBoundaries) {
  lts::Lts a;
  a.add_states(2);
  a.set_initial_state(0);
  a.add_transition(0, "X", 1);

  lts::Lts b = a;
  b.add_transition(0, "X", 0);

  serve::Hasher ha;
  serve::Hasher hb;
  serve::hash_append(ha, a);
  serve::hash_append(hb, b);
  EXPECT_NE(ha.key(), hb.key());

  serve::Hasher h1;
  h1.str("ab");
  h1.str("c");
  serve::Hasher h2;
  h2.str("a");
  h2.str("bc");
  EXPECT_NE(h1.key(), h2.key());
}

TEST(ServeHash, HexIsStable) {
  serve::Hasher h;
  h.str("hello");
  const serve::CacheKey k = h.key();
  EXPECT_EQ(k.hex().size(), 32u);
  EXPECT_EQ(k.hex(), h.key().hex());
}

// --- result cache --------------------------------------------------------

TEST(ServeCache, LruEvictsLeastRecentlyUsed) {
  serve::ResultCache::Options opts;
  opts.capacity_bytes = 3 * (128 + 8);  // three entries of 8 payload bytes
  serve::ResultCache cache(opts);
  const auto key = [](int i) {
    serve::Hasher h;
    h.u64(static_cast<std::uint64_t>(i));
    return h.key();
  };
  cache.insert(key(1), "11111111");
  cache.insert(key(2), "22222222");
  cache.insert(key(3), "33333333");
  ASSERT_TRUE(cache.lookup(key(1)).has_value());  // 1 is now most recent
  cache.insert(key(4), "44444444");               // evicts 2
  EXPECT_FALSE(cache.lookup(key(2)).has_value());
  EXPECT_TRUE(cache.lookup(key(1)).has_value());
  EXPECT_TRUE(cache.lookup(key(4)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeCache, DiskTierSurvivesANewCacheInstance) {
  const std::string dir = testing::TempDir() + "serve_cache_disk";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("disk-key");
  const serve::CacheKey key = h.key();
  {
    serve::ResultCache cache(opts);
    cache.insert(key, "persisted payload\nwith newline");
    EXPECT_EQ(cache.stats().disk_writes, 1u);
  }
  serve::ResultCache fresh(opts);
  const auto hit = fresh.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "persisted payload\nwith newline");
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  // Promoted into memory: a second lookup does not touch the disk tier.
  ASSERT_TRUE(fresh.lookup(key).has_value());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
}

TEST(ServeCache, CorruptDiskEntryIsAMissNotAnError) {
  const std::string dir = testing::TempDir() + "serve_cache_corrupt";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("corrupt-key");
  const serve::CacheKey key = h.key();
  {
    std::ofstream os(dir + "/" + key.hex() + ".mvcr", std::ios::binary);
    os << "MVCR\x01 this is not a valid record stream";
  }
  serve::ResultCache cache(opts);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ServeCache, ConcurrentWritersOfSameKeyPublishExactlyOnce) {
  // Many writers racing on the same key must never leave a torn entry on
  // disk: each writes a private tmp file and publishes it with an atomic
  // rename, so whichever rename lands last, readers see one complete file.
  const std::string dir = testing::TempDir() + "serve_cache_race";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("contended-key");
  const serve::CacheKey key = h.key();
  const std::string payload(64 * 1024, 'x');  // big enough to tear if unsynced

  constexpr int kWriters = 8;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      // Separate instances so every insert goes through the disk path (a
      // shared instance would dedup in the memory tier before writing).
      serve::ResultCache cache(opts);
      cache.insert(key, payload);
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }

  // Exactly one published file for the key, no leftover tmp files.
  std::size_t published = 0;
  std::size_t leftovers = 0;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") {
        continue;
      }
      if (name.find(".tmp") != std::string::npos) {
        ++leftovers;
      } else {
        ++published;
      }
    }
    ::closedir(d);
  }
  EXPECT_EQ(published, 1u);
  EXPECT_EQ(leftovers, 0u);

  serve::ResultCache reader(opts);
  const auto hit = reader.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  EXPECT_EQ(reader.stats().disk_errors, 0u);
}

TEST(ServeCache, TruncatedDiskEntryIsAMissAndCountsAsCorrupt) {
  const std::string dir = testing::TempDir() + "serve_cache_trunc";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;
  serve::Hasher h;
  h.str("truncated-key");
  const serve::CacheKey key = h.key();
  {
    serve::ResultCache cache(opts);
    cache.insert(key, std::string(4096, 'y'));
  }
  const std::string path = dir + "/" + key.hex() + ".mvcr";
  ::truncate(path.c_str(), 100);  // cut mid-payload, after a valid header

  serve::ResultCache cache(opts);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().disk_errors, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The entry stays a miss rather than resurrecting as garbage.
  EXPECT_FALSE(cache.lookup(key).has_value());
}

// --- protocol ------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsWithEmbeddedSeparators) {
  serve::Request r = make_request(serve::Verb::kCheck,
                                  "line1\nline2\twith tab\\backslash",
                                  "nu X. (<any> tt && [any] X)", 42);
  r.deadline = std::chrono::milliseconds(1500);
  const std::string line = serve::encode_request(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const serve::Request back = serve::decode_request(line);
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.verb, serve::Verb::kCheck);
  EXPECT_EQ(back.deadline.count(), 1500);
  EXPECT_EQ(back.arg, r.arg);
  EXPECT_EQ(back.payload, r.payload);
}

TEST(ServeProtocol, ResponseRoundTrips) {
  const serve::Response r{7, serve::Status::kOverloaded, "queue full"};
  const serve::Response back = serve::decode_response(serve::encode_response(r));
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.status, serve::Status::kOverloaded);
  EXPECT_EQ(back.body, "queue full");
}

TEST(ServeProtocol, RejectsMalformedLines) {
  EXPECT_THROW((void)serve::decode_request("not a protocol line"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::decode_request("mv1\tx\tping\t0\t\t"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::decode_request("mv1\t1\tfrobnicate\t0\t\t"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::decode_response("mv1\t1\tok"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::unescape_field("dangling\\"),
               serve::ProtocolError);
}

// --- service: served == direct, bitwise ----------------------------------

void expect_served_matches_direct(const serve::Request& request) {
  const std::string direct = serve::solve_request(request);
  for (unsigned workers : {1u, 4u}) {
    serve::ServiceOptions opts;
    opts.workers = workers;
    serve::Service service(opts);
    const serve::Response response = service.evaluate(request);
    EXPECT_EQ(response.status, serve::Status::kOk) << response.body;
    EXPECT_EQ(response.body, direct) << "workers=" << workers;
  }
}

TEST(ServeService, CtmcReachabilityMatchesDirectSolveBitwise) {
  expect_served_matches_direct(make_request(serve::Verb::kReach, kCtmcModel));
  expect_served_matches_direct(
      make_request(serve::Verb::kReach, kCtmcModel, "0.5"));
}

TEST(ServeService, ImcIntervalBoundsMatchDirectSolveBitwise) {
  expect_served_matches_direct(
      make_request(serve::Verb::kBounds, kNondetModel));
}

TEST(ServeService, McFormulaMatchesDirectSolveBitwise) {
  expect_served_matches_direct(make_request(
      serve::Verb::kCheck, kLtsModel, "nu X. (<any> tt && [any] X)"));
  expect_served_matches_direct(
      make_request(serve::Verb::kCheck, kLtsModel, "<'PUSH'> tt"));
}

TEST(ServeService, ThroughputMatchesDirectSolveBitwise) {
  // Ergodic variant (no absorbing state) so the steady state is nontrivial.
  const std::string model =
      "des (0, 3, 3)\n"
      "(0, \"rate 1.0\", 1)\n"
      "(1, \"STEP; rate 2.0\", 2)\n"
      "(2, \"rate 3.0\", 0)\n";
  expect_served_matches_direct(
      make_request(serve::Verb::kThroughput, model, "STEP*"));
}

// --- service: cache, coalescing, backpressure, deadlines -----------------

TEST(ServeService, SecondIdenticalRequestHitsTheCache) {
  serve::ServiceOptions opts;
  opts.workers = 2;
  serve::Service service(opts);
  const serve::Request r = make_request(serve::Verb::kReach, kCtmcModel);
  const serve::Response first = service.evaluate(r);
  const serve::Response second = service.evaluate(r);
  ASSERT_EQ(first.status, serve::Status::kOk) << first.body;
  EXPECT_EQ(first.body, second.body);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.solves, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.completed_ok, 2u);
}

TEST(ServeService, EquivalentAutRenderingsShareOneCacheEntry) {
  serve::ServiceOptions opts;
  opts.workers = 1;
  serve::Service service(opts);
  // Same model, different textual spacing: the key hashes the parsed IMC.
  const std::string variant =
      "des (0, 4, 4)\n"
      "(0,\"rate 1.0\",1)\n"
      "(1,\"rate 2.0\",0)\n"
      "(1,\"STEP; rate 1.0\",2)\n"
      "(2,\"rate 4.0\",3)\n";
  (void)service.evaluate(make_request(serve::Verb::kReach, kCtmcModel));
  (void)service.evaluate(make_request(serve::Verb::kReach, variant));
  EXPECT_EQ(service.metrics().solves, 1u);
  EXPECT_EQ(service.metrics().cache_hits, 1u);
}

TEST(ServeService, ConcurrentIdenticalRequestsCoalesceIntoOneSolve) {
  constexpr int kDuplicates = 8;
  std::counting_semaphore<kDuplicates + 1> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  const serve::Request r = make_request(serve::Verb::kReach, kCtmcModel);
  std::vector<std::shared_future<serve::Response>> futures;
  futures.reserve(kDuplicates);
  for (int i = 0; i < kDuplicates; ++i) {
    futures.push_back(service.submit(r));
  }
  gate.release();  // let the single worker run the one coalesced flight
  std::vector<std::string> bodies;
  for (auto& f : futures) {
    const serve::Response resp = f.get();
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.body;
    bodies.push_back(resp.body);
  }
  for (const std::string& body : bodies) {
    EXPECT_EQ(body, bodies.front());
  }
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.solves, 1u);
  EXPECT_EQ(m.coalesced, static_cast<std::uint64_t>(kDuplicates - 1));
  EXPECT_EQ(m.cache_hits, 0u);
}

// Saturation stress: a single blocked worker, a two-slot queue and a flood
// of distinct requests.  Excess requests must be shed immediately with an
// explicit kOverloaded status (never queued unboundedly, never deadlocked).
// This test runs under TSan in CI.
TEST(ServeService, QueueSaturationShedsWithExplicitOverloadedStatus) {
  constexpr int kFlood = 12;
  std::counting_semaphore<kFlood + 1> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  std::vector<std::shared_future<serve::Response>> futures;
  for (int i = 0; i < kFlood; ++i) {
    // Distinct models (different rates) -> distinct keys -> no coalescing.
    const std::string model = "des (0, 1, 2)\n(0, \"rate " +
                              std::to_string(i + 1) + ".0\", 1)\n";
    futures.push_back(
        service.submit(make_request(serve::Verb::kReach, model)));
  }
  gate.release(kFlood);
  int ok = 0;
  int overloaded = 0;
  for (auto& f : futures) {
    const serve::Response resp = f.get();  // must not deadlock
    if (resp.status == serve::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, serve::Status::kOverloaded) << resp.body;
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kFlood);
  EXPECT_GE(overloaded, 1);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.shed, static_cast<std::uint64_t>(overloaded));
  EXPECT_EQ(m.solves, static_cast<std::uint64_t>(ok));
}

TEST(ServeService, QueuedRequestPastItsDeadlineTimesOut) {
  std::counting_semaphore<4> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  auto blocker = service.submit(make_request(serve::Verb::kReach, kCtmcModel));
  serve::Request urgent = make_request(serve::Verb::kBounds, kNondetModel);
  urgent.deadline = std::chrono::milliseconds(1);
  auto doomed = service.submit(urgent);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.release(2);
  EXPECT_EQ(blocker.get().status, serve::Status::kOk);
  const serve::Response resp = doomed.get();
  EXPECT_EQ(resp.status, serve::Status::kTimeout) << resp.body;
  EXPECT_EQ(service.metrics().timed_out, 1u);
}

TEST(ServeService, MalformedPayloadIsInvalidWithoutTouchingTheQueue) {
  serve::Service service;
  const serve::Response resp =
      service.evaluate(make_request(serve::Verb::kReach, "des (not aut"));
  EXPECT_EQ(resp.status, serve::Status::kInvalid);
  EXPECT_NE(resp.body.find("MV010"), std::string::npos);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.solves, 0u);
}

TEST(ServeService, AdmissionBudgetRejectsOversizedModelsPreQueue) {
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.admission_budget = 2;  // kCtmcModel has 4 states
  serve::Service service(opts);
  const serve::Response resp =
      service.evaluate(make_request(serve::Verb::kReach, kCtmcModel));
  EXPECT_EQ(resp.status, serve::Status::kInvalid);
  EXPECT_NE(resp.body.find("MV042"), std::string::npos);
  EXPECT_NE(resp.body.find("admission budget"), std::string::npos);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.solves, 0u);  // never reached a worker

  // Raising the budget admits the same request unchanged.
  serve::ServiceOptions open_opts;
  open_opts.workers = 1;
  open_opts.admission_budget = 64;
  serve::Service open_service(open_opts);
  EXPECT_EQ(
      open_service.evaluate(make_request(serve::Verb::kReach, kCtmcModel))
          .status,
      serve::Status::kOk);
}

TEST(ServeService, NondetImcOnReachIsInvalidWithAnActionableHint) {
  // reach/throughput need a deterministic closed chain; a nondeterministic
  // IMC can never satisfy them, so the pre-flight lint rejects it with the
  // MV013 diagnostic pointing at 'bounds' instead of failing in a worker.
  serve::Service service;
  const serve::Response resp =
      service.evaluate(make_request(serve::Verb::kReach, kNondetModel));
  EXPECT_EQ(resp.status, serve::Status::kInvalid);
  EXPECT_NE(resp.body.find("MV013"), std::string::npos);
  EXPECT_NE(resp.body.find("bounds"), std::string::npos);
  // The same model is perfectly valid for the bounds verb.
  EXPECT_EQ(service.evaluate(make_request(serve::Verb::kBounds, kNondetModel))
                .status,
            serve::Status::kOk);
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.solves, 1u);
}

TEST(ServeService, ControlVerbsAreHandledInline) {
  serve::Service service;
  EXPECT_EQ(service.evaluate(make_request(serve::Verb::kPing, "")).body,
            "pong");
  const serve::Response stats =
      service.evaluate(make_request(serve::Verb::kStats, ""));
  EXPECT_EQ(stats.status, serve::Status::kOk);
  EXPECT_NE(stats.body.find("serve metrics"), std::string::npos);
  EXPECT_EQ(service.evaluate(make_request(serve::Verb::kShutdown, "")).status,
            serve::Status::kError);
}

// --- pipeline minimisation cache -----------------------------------------

lts::Lts chain_with_twin_tail(int tag) {
  // 0 -A-> 1 -B-> 2 and 0 -A-> 3 -B-> 4: states {1,3} and {2,4} are
  // bisimilar, so branching minimisation shrinks 5 -> 3 states.
  lts::Lts l;
  l.add_states(5);
  l.set_initial_state(0);
  const std::string a = "A" + std::to_string(tag);
  l.add_transition(0, a, 1);
  l.add_transition(0, a, 3);
  l.add_transition(1, "B", 2);
  l.add_transition(3, "B", 4);
  return l;
}

TEST(ServePipelineCache, OnlyChangedSubtreesAreReminimised) {
  serve::PipelineCache cache;
  const auto tree = [](int left_tag, int right_tag) {
    return compose::compose2(
        compose::minimize_here(
            compose::leaf(chain_with_twin_tail(left_tag), "left")),
        {},
        compose::minimize_here(
            compose::leaf(chain_with_twin_tail(right_tag), "right")));
  };

  compose::EvalStats s1;
  const lts::Lts first = compose::evaluate(tree(0, 1), true, &s1, &cache);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);

  // Re-evaluating with one changed leaf re-minimises only that subtree.
  compose::EvalStats s2;
  const lts::Lts second = compose::evaluate(tree(0, 2), true, &s2, &cache);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  bool saw_cached_step = false;
  for (const compose::StepStat& step : s2.steps) {
    saw_cached_step =
        saw_cached_step ||
        step.description.find("(cached)") != std::string::npos;
  }
  EXPECT_TRUE(saw_cached_step);

  // Cached evaluation must be indistinguishable from the uncached one.
  const lts::Lts direct = compose::evaluate(tree(0, 2), true);
  EXPECT_EQ(lts::to_aut(second), lts::to_aut(direct));
  EXPECT_EQ(lts::to_aut(first), lts::to_aut(compose::evaluate(tree(0, 1), true)));
}

// --- socket front end ----------------------------------------------------

TEST(ServeSocket, EndToEndSolveDuplicateStatsShutdown) {
  const std::string socket_path =
      "/tmp/mvserve_test_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.endpoint = socket_path;
  opts.service.workers = 2;
  serve::Server server(opts);
  std::thread server_thread([&server] { server.run(); });

  {
    serve::Client client(socket_path);
    EXPECT_EQ(client.call(make_request(serve::Verb::kPing, "")).body, "pong");

    const serve::Request solve =
        make_request(serve::Verb::kReach, kCtmcModel, "", 11);
    const serve::Response first = client.call(solve);
    ASSERT_EQ(first.status, serve::Status::kOk) << first.body;
    EXPECT_EQ(first.id, 11u);
    EXPECT_EQ(first.body, serve::solve_request(solve));

    const serve::Response dup = client.call(solve);
    EXPECT_EQ(dup.body, first.body);

    const serve::Response stats =
        client.call(make_request(serve::Verb::kStats, ""));
    EXPECT_NE(stats.body.find("cache hits"), std::string::npos);

    const serve::Response bye =
        client.call(make_request(serve::Verb::kShutdown, ""));
    EXPECT_EQ(bye.status, serve::Status::kOk);
  }
  server_thread.join();
  const serve::ServiceMetrics m = server.service().metrics();
  EXPECT_EQ(m.solves, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
}

TEST(ServeSocket, MalformedModelGetsDiagnosticsNotTimeout) {
  // A client submitting garbage must get the lint diagnostics back as an
  // immediate 'invalid' response — not kError, and certainly not a
  // kTimeout after its deadline silently expired in the queue.
  const std::string socket_path =
      "/tmp/mvserve_invalid_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.endpoint = socket_path;
  opts.service.workers = 1;
  serve::Server server(opts);
  std::thread server_thread([&server] { server.run(); });

  {
    serve::Client client(socket_path);
    serve::Request bad =
        make_request(serve::Verb::kReach, "des (garbage", "", 7);
    bad.deadline = std::chrono::milliseconds(60000);
    const serve::Response resp = client.call(bad);
    EXPECT_EQ(resp.status, serve::Status::kInvalid);
    EXPECT_EQ(resp.id, 7u);
    EXPECT_NE(resp.body.find("MV010"), std::string::npos)
        << "body should carry the structured diagnostic, got: " << resp.body;
    EXPECT_NE(resp.body.find("malformed .aut model"), std::string::npos);

    const serve::Response bye =
        client.call(make_request(serve::Verb::kShutdown, ""));
    EXPECT_EQ(bye.status, serve::Status::kOk);
  }
  server_thread.join();
  const serve::ServiceMetrics m = server.service().metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.timed_out, 0u);
  EXPECT_EQ(m.solves, 0u);
}

// --- endpoint grammar ----------------------------------------------------

TEST(ServeEndpoint, GrammarSplitsTcpFromUnixPaths) {
  const serve::Endpoint tcp = serve::parse_endpoint("127.0.0.1:7500");
  EXPECT_EQ(tcp.kind, serve::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7500);
  EXPECT_EQ(tcp.to_string(), "127.0.0.1:7500");

  // Empty host means loopback; port 0 asks for an ephemeral port.
  const serve::Endpoint loop = serve::parse_endpoint(":0");
  EXPECT_EQ(loop.kind, serve::Endpoint::Kind::kTcp);
  EXPECT_EQ(loop.host, "127.0.0.1");
  EXPECT_EQ(loop.port, 0);

  const serve::Endpoint host = serve::parse_endpoint("localhost:65535");
  EXPECT_EQ(host.kind, serve::Endpoint::Kind::kTcp);
  EXPECT_EQ(host.port, 65535);

  // Anything whose last ':'-field is not a decimal port is a Unix path —
  // including paths that merely contain colons.
  for (const char* path : {"/tmp/serve.sock", "relative.sock",
                           "/tmp/with:colon/serve.sock", "host:",
                           "host:80x"}) {
    const serve::Endpoint ep = serve::parse_endpoint(path);
    EXPECT_EQ(ep.kind, serve::Endpoint::Kind::kUnix) << path;
    EXPECT_EQ(ep.to_string(), path);
  }

  EXPECT_THROW((void)serve::parse_endpoint(""), std::runtime_error);
  EXPECT_THROW((void)serve::parse_endpoint("host:65536"), std::runtime_error);
}

// --- TCP transport: framing torture --------------------------------------

namespace raw {

int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

std::string read_line(int fd) {
  std::string line;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') {
      return line;
    }
    line.push_back(c);
  }
  ADD_FAILURE() << "connection closed before a full line arrived";
  return line;
}

}  // namespace raw

TEST(ServeTcp, ReassemblesByteAtATimeDelivery) {
  serve::ServerOptions opts;
  opts.endpoint = "127.0.0.1:0";
  opts.service.workers = 1;
  serve::Server server(opts);
  ASSERT_EQ(server.bound_endpoint().kind, serve::Endpoint::Kind::kTcp);
  ASSERT_NE(server.bound_endpoint().port, 0);  // ephemeral port was read back
  std::thread server_thread([&server] { server.run(); });

  const serve::Request solve =
      make_request(serve::Verb::kReach, kCtmcModel, "", 5);
  const std::string wire = serve::encode_request(solve) + "\n";
  const int fd = raw::connect_tcp(server.bound_endpoint().port);
  for (const char c : wire) {  // worst-case packetisation
    ASSERT_EQ(::send(fd, &c, 1, 0), 1);
  }
  const serve::Response resp = serve::decode_response(raw::read_line(fd));
  EXPECT_EQ(resp.id, 5u);
  EXPECT_EQ(resp.status, serve::Status::kOk) << resp.body;
  EXPECT_EQ(resp.body, serve::solve_request(solve));
  ::close(fd);

  server.stop();
  server_thread.join();
}

TEST(ServeTcp, SplitsTwoRequestsCoalescedIntoOneSegment) {
  serve::ServerOptions opts;
  opts.endpoint = "localhost:0";
  opts.service.workers = 1;
  serve::Server server(opts);
  std::thread server_thread([&server] { server.run(); });

  const serve::Request a = make_request(serve::Verb::kReach, kCtmcModel,
                                        "0.5", 21);
  const serve::Request b =
      make_request(serve::Verb::kBounds, kNondetModel, "", 22);
  const std::string wire =
      serve::encode_request(a) + "\n" + serve::encode_request(b) + "\n";
  const int fd = raw::connect_tcp(server.bound_endpoint().port);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  // Both responses arrive (possibly out of request order); match by id.
  std::string body_a;
  std::string body_b;
  for (int i = 0; i < 2; ++i) {
    const serve::Response r = serve::decode_response(raw::read_line(fd));
    EXPECT_EQ(r.status, serve::Status::kOk) << r.body;
    (r.id == 21 ? body_a : body_b) = r.body;
  }
  EXPECT_EQ(body_a, serve::solve_request(a));
  EXPECT_EQ(body_b, serve::solve_request(b));
  ::close(fd);

  server.stop();
  server_thread.join();
}

TEST(ServeTcp, SurvivesClientDisconnectMidResponse) {
  serve::ServerOptions opts;
  opts.endpoint = "127.0.0.1:0";
  opts.service.workers = 1;
  serve::Server server(opts);
  std::thread server_thread([&server] { server.run(); });
  const std::string endpoint = server.bound_endpoint().to_string();

  {
    // Submit a solve and vanish before the response can be written; the
    // server must absorb the broken pipe, not die or wedge.
    const int fd = raw::connect_tcp(server.bound_endpoint().port);
    const std::string wire =
        serve::encode_request(make_request(serve::Verb::kReach, kCtmcModel)) +
        "\n";
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    ::close(fd);
  }

  // The server keeps serving new connections afterwards.
  serve::Client client(endpoint, std::chrono::milliseconds(2000));
  EXPECT_EQ(client.call(make_request(serve::Verb::kPing, "")).body, "pong");
  const serve::Response bye =
      client.call(make_request(serve::Verb::kShutdown, ""));
  EXPECT_EQ(bye.status, serve::Status::kOk);
  server_thread.join();
}

// --- client receive deadline (hung-server regression) ---------------------

TEST(ServeClientDeadline, HungServerRaisesClientTimeoutNotForeverBlock) {
  // A listener that accepts (via the kernel backlog) but never replies:
  // before the receive deadline existed, Client::call blocked in recv()
  // forever here.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 4), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));

  serve::Client client(endpoint, std::chrono::milliseconds{0},
                       std::chrono::milliseconds{200});
  serve::Request r = make_request(serve::Verb::kPing, "");
  r.deadline = std::chrono::milliseconds(100);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.call(r), serve::ClientTimeout);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(5));  // deadline, not forever
  ::close(lfd);
}

// --- consistent-hash router ----------------------------------------------

TEST(ServeRouter, OwnerIsDeterministicAndPreferenceCoversAllReplicas) {
  const std::vector<std::string> eps = {"/tmp/a.sock", "127.0.0.1:7501",
                                        "/tmp/c.sock"};
  serve::Router r1(eps);
  serve::Router r2(eps);  // independent instance, same ring
  for (int i = 0; i < 64; ++i) {
    serve::Hasher h;
    h.u64(static_cast<std::uint64_t>(i));
    const serve::CacheKey key = h.key();
    EXPECT_EQ(r1.owner(key), r2.owner(key));
    const std::vector<std::size_t> pref = r1.preference(key);
    ASSERT_EQ(pref.size(), eps.size());
    EXPECT_EQ(pref.front(), r1.owner(key));
    std::vector<bool> seen(eps.size(), false);
    for (const std::size_t rep : pref) {
      ASSERT_LT(rep, eps.size());
      EXPECT_FALSE(seen[rep]);  // each replica exactly once
      seen[rep] = true;
    }
  }
  // With 3 replicas and 64 spread-out keys, every replica owns something.
  std::vector<std::size_t> owned(eps.size(), 0);
  for (int i = 0; i < 64; ++i) {
    serve::Hasher h;
    h.u64(static_cast<std::uint64_t>(i));
    ++owned[r1.owner(h.key())];
  }
  for (const std::size_t count : owned) {
    EXPECT_GT(count, 0u);
  }
}

TEST(ServeRouter, RoutesFallOverToNextRingNodeAndRecover) {
  serve::RouterOptions opts;
  opts.down_cooldown = std::chrono::hours(1);  // no auto-recovery mid-test
  serve::Router router({"/tmp/a.sock", "/tmp/b.sock", "/tmp/c.sock"}, opts);
  serve::Hasher h;
  h.str("some model digest");
  const serve::CacheKey key = h.key();
  const std::vector<std::size_t> pref = router.preference(key);

  EXPECT_EQ(router.route(key), pref[0]);
  router.mark_down(pref[0]);
  EXPECT_TRUE(router.is_down(pref[0]));
  EXPECT_EQ(router.route(key), pref[1]);  // next distinct ring node
  router.mark_down(pref[1]);
  EXPECT_EQ(router.route(key), pref[2]);
  router.mark_down(pref[2]);
  EXPECT_THROW((void)router.route(key), std::runtime_error);
  router.mark_up(pref[0]);
  EXPECT_EQ(router.route(key), pref[0]);
}

TEST(ServeRouter, RejectsEmptyAndDuplicateEndpoints) {
  EXPECT_THROW(serve::Router({}), std::runtime_error);
  EXPECT_THROW(serve::Router({"/tmp/a.sock", "/tmp/a.sock"}),
               std::runtime_error);
}

TEST(ServeRouter, RoutedClientSendsIdenticalModelsToTheOwningReplica) {
  // Two live replicas: every call for one content key lands on its ring
  // owner (locality 1.0, one replica solves, the other never sees it);
  // after the owner dies the same key fails over and still succeeds.
  const std::string base = "/tmp/mvserve_route_" + std::to_string(::getpid());
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<std::thread> threads;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 2; ++i) {
    serve::ServerOptions opts;
    opts.endpoint = base + "_" + std::to_string(i) + ".sock";
    opts.service.workers = 1;
    servers.push_back(std::make_unique<serve::Server>(opts));
    endpoints.push_back(opts.endpoint);
  }
  for (auto& s : servers) {
    threads.emplace_back([&s] { s->run(); });
  }

  auto router = std::make_shared<serve::Router>(endpoints);
  serve::RoutedClient client(router, std::chrono::milliseconds(2000));
  const serve::Request solve = make_request(serve::Verb::kReach, kCtmcModel);
  const std::size_t owner =
      router->owner(serve::prepare_request(solve).key);

  const serve::Response first = client.call(solve);
  ASSERT_EQ(first.status, serve::Status::kOk) << first.body;
  const serve::Response dup = client.call(solve);
  EXPECT_EQ(dup.body, first.body);
  EXPECT_EQ(client.stats().primary, 2u);
  EXPECT_EQ(client.stats().failover, 0u);
  EXPECT_DOUBLE_EQ(client.stats().locality(), 1.0);
  EXPECT_EQ(servers[owner]->service().metrics().solves, 1u);
  EXPECT_EQ(servers[owner]->service().metrics().cache_hits, 1u);
  EXPECT_EQ(servers[1 - owner]->service().metrics().solves, 0u);

  // Kill the owner: the same request must fail over to the survivor.
  servers[owner]->stop();
  threads[owner].join();
  const serve::Response after = client.call(solve);
  EXPECT_EQ(after.status, serve::Status::kOk) << after.body;
  EXPECT_EQ(after.body, first.body);  // byte-identical from the other replica
  EXPECT_GE(client.stats().failover, 1u);
  EXPECT_TRUE(router->is_down(owner));
  EXPECT_EQ(servers[1 - owner]->service().metrics().solves, 1u);

  servers[1 - owner]->stop();
  threads[1 - owner].join();
}

// --- batched solver execution --------------------------------------------

TEST(ServeService, SameModelFlightsAreBatchedIntoOneSweep) {
  // Hold the single worker on an unbatchable blocker while a sweep of four
  // same-model reach requests (different time bounds) queues up behind it;
  // on release the worker must answer all four as ONE batch over one shared
  // closed model — byte-identical to the direct solves.
  constexpr int kSweep = 4;
  std::counting_semaphore<kSweep + 2> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  auto blocker =
      service.submit(make_request(serve::Verb::kBounds, kNondetModel));
  const char* bounds[kSweep] = {"0.25", "0.5", "", "2.0"};
  std::vector<serve::Request> requests;
  std::vector<std::shared_future<serve::Response>> futures;
  for (int i = 0; i < kSweep; ++i) {
    requests.push_back(make_request(serve::Verb::kReach, kCtmcModel,
                                    bounds[i],
                                    static_cast<std::uint64_t>(i + 2)));
    futures.push_back(service.submit(requests.back()));
  }
  gate.release(kSweep + 1);  // one for the blocker, one per sweep flight

  EXPECT_EQ(blocker.get().status, serve::Status::kOk);
  for (int i = 0; i < kSweep; ++i) {
    const serve::Response resp = futures[i].get();
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.body;
    EXPECT_EQ(resp.body, serve::solve_request(requests[i]))
        << "batched result must be byte-identical to the direct solve";
  }

  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.solves, static_cast<std::uint64_t>(kSweep) + 1);
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched, static_cast<std::uint64_t>(kSweep));
  EXPECT_EQ(m.max_batch, static_cast<std::uint64_t>(kSweep));
}

TEST(ServeService, MaxBatchOneDisablesBatching) {
  std::counting_semaphore<8> gate(0);
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;
  opts.pre_solve_hook = [&gate](const serve::CacheKey&) { gate.acquire(); };
  serve::Service service(opts);

  auto blocker =
      service.submit(make_request(serve::Verb::kBounds, kNondetModel));
  std::vector<std::shared_future<serve::Response>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(make_request(
        serve::Verb::kReach, kCtmcModel, "0." + std::to_string(i + 1))));
  }
  gate.release(4);
  EXPECT_EQ(blocker.get().status, serve::Status::kOk);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::Status::kOk);
  }
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.batches, 0u);
  EXPECT_EQ(m.batched, 0u);
  EXPECT_EQ(m.max_batch, 1u);
}

// --- disk-tier tmp sweep -------------------------------------------------

TEST(ServeCache, StaleTmpFilesAreSweptOnOpenFreshOnesKept) {
  const std::string dir = testing::TempDir() + "serve_cache_tmp_sweep";
  ::mkdir(dir.c_str(), 0755);
  serve::ResultCache::Options opts;
  opts.disk_dir = dir;

  // A published entry, written the normal way.
  serve::Hasher h;
  h.str("published-key");
  const serve::CacheKey key = h.key();
  {
    serve::ResultCache cache(opts);
    cache.insert(key, "kept payload");
  }

  // An orphaned temporary from a crashed writer: old enough to sweep.
  const std::string stale = dir + "/" + key.hex() + ".mvcr.tmp.99999.0";
  { std::ofstream(stale) << "half-written"; }
  timespec old_times[2];
  old_times[0].tv_sec = std::time(nullptr) - 3600;
  old_times[0].tv_nsec = 0;
  old_times[1] = old_times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, stale.c_str(), old_times, 0), 0);

  // A *fresh* temporary: could be a live writer mid-publish, must survive.
  const std::string fresh = dir + "/" + key.hex() + ".mvcr.tmp.99999.1";
  { std::ofstream(fresh) << "in flight"; }

  serve::ResultCache cache(opts);
  EXPECT_EQ(cache.stats().tmp_swept, 1u);
  EXPECT_NE(::access(stale.c_str(), F_OK), 0);  // swept
  EXPECT_EQ(::access(fresh.c_str(), F_OK), 0);  // kept
  const auto hit = cache.lookup(key);           // published entry untouched
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "kept payload");
  ::unlink(fresh.c_str());
}

}  // namespace
