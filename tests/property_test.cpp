// Cross-module property-based tests on randomised models: algebraic laws
// of composition, conservation laws of the solvers, and consistency between
// independent implementation paths.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "bisim/equivalence.hpp"
#include "bisim/trace.hpp"
#include "core/flow.hpp"
#include "imc/compose.hpp"
#include "imc/lump.hpp"
#include "lts/analysis.hpp"
#include "lts/lts_io.hpp"
#include "lts/product.hpp"
#include "markov/steady.hpp"
#include "markov/transient.hpp"
#include "proc/generator.hpp"

namespace {

using namespace multival;

// ---------------------------------------------------------------- helpers --

lts::Lts random_lts(std::uint32_t seed, std::size_t states,
                    std::size_t labels, double tau_fraction) {
  std::mt19937 rng(seed);
  lts::Lts l;
  l.add_states(states);
  std::vector<lts::ActionId> ids;
  for (std::size_t i = 0; i < labels; ++i) {
    ids.push_back(l.actions().intern("G" + std::to_string(i)));
  }
  std::uniform_int_distribution<lts::StateId> state(
      0, static_cast<lts::StateId>(states - 1));
  std::uniform_int_distribution<std::size_t> label(0, labels - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t i = 0; i < states * 2; ++i) {
    const auto a = coin(rng) < tau_fraction ? lts::ActionTable::kTau
                                            : ids[label(rng)];
    l.add_transition(state(rng), a, state(rng));
  }
  return l;
}

/// A random strongly-connected labelled CTMC (a cycle plus chords).
markov::Ctmc random_ctmc(std::uint32_t seed, std::size_t states) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> rate(0.1, 5.0);
  std::uniform_int_distribution<markov::MState> state(
      0, static_cast<markov::MState>(states - 1));
  markov::Ctmc c;
  c.add_states(states);
  const char* labels[] = {"red", "green", "blue"};
  for (markov::MState s = 0; s < states; ++s) {
    c.add_transition(s, (s + 1) % static_cast<markov::MState>(states),
                     rate(rng), labels[s % 3]);
  }
  for (std::size_t i = 0; i < states; ++i) {
    c.add_transition(state(rng), state(rng), rate(rng), labels[i % 3]);
  }
  return c;
}

class RandomSeed : public ::testing::TestWithParam<std::uint32_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeed, ::testing::Range(1u, 11u));

// ------------------------------------------------- composition algebra --

TEST_P(RandomSeed, ParallelIsCommutativeModuloStrongBisim) {
  const lts::Lts a = random_lts(GetParam(), 10, 3, 0.1);
  const lts::Lts b = random_lts(GetParam() + 100, 10, 3, 0.1);
  const std::vector<std::string> sync{"G0", "G1"};
  const lts::Lts ab = lts::parallel(a, b, sync);
  const lts::Lts ba = lts::parallel(b, a, sync);
  EXPECT_TRUE(bisim::equivalent(ab, ba, bisim::Equivalence::kStrong));
}

TEST_P(RandomSeed, ParallelIsAssociativeModuloStrongBisim) {
  const lts::Lts a = random_lts(GetParam(), 6, 2, 0.0);
  const lts::Lts b = random_lts(GetParam() + 100, 6, 2, 0.0);
  const lts::Lts c = random_lts(GetParam() + 200, 6, 2, 0.0);
  // All components share all gates, so folding with a global sync set is
  // associative.
  const std::vector<std::string> sync{"G0", "G1"};
  const lts::Lts left = lts::parallel(lts::parallel(a, b, sync), c, sync);
  const lts::Lts right = lts::parallel(a, lts::parallel(b, c, sync), sync);
  EXPECT_TRUE(bisim::equivalent(left, right, bisim::Equivalence::kStrong));
}

TEST_P(RandomSeed, HideThenMinimizeCommutesWithMinimizeThenHide) {
  // hide(min(l)) ~ min(hide(l)) modulo branching bisim.
  const lts::Lts l = random_lts(GetParam(), 20, 3, 0.2);
  const std::vector<std::string> gates{"G0"};
  const lts::Lts a = lts::hide(
      bisim::minimize(l, bisim::Equivalence::kBranching).quotient, gates);
  const lts::Lts b = lts::hide(l, gates);
  EXPECT_TRUE(bisim::equivalent(a, b, bisim::Equivalence::kBranching));
}

TEST_P(RandomSeed, AutRoundTripPreservesBisimilarity) {
  const lts::Lts l = random_lts(GetParam(), 15, 3, 0.3);
  const lts::Lts back = lts::from_aut(lts::to_aut(l));
  EXPECT_EQ(back.num_states(), l.num_states());
  EXPECT_EQ(back.num_transitions(), l.num_transitions());
  EXPECT_TRUE(bisim::equivalent(l, back, bisim::Equivalence::kStrong));
}

TEST_P(RandomSeed, WeakQuotientIsWeaklyEquivalent) {
  const lts::Lts l = random_lts(GetParam(), 25, 3, 0.3);
  const auto r = bisim::minimize(l, bisim::Equivalence::kWeak);
  EXPECT_TRUE(bisim::equivalent(l, r.quotient, bisim::Equivalence::kWeak));
  // Weak quotients are also weak-trace equivalent to the original.
  EXPECT_TRUE(bisim::weak_trace_equivalent(l, r.quotient));
}

TEST_P(RandomSeed, DeterminizeIsIdempotentAndTracePreserving) {
  const lts::Lts l = random_lts(GetParam(), 10, 2, 0.3);
  const lts::Lts d1 = bisim::determinize(l);
  const lts::Lts d2 = bisim::determinize(d1);
  EXPECT_TRUE(bisim::weak_trace_equivalent(l, d1));
  EXPECT_TRUE(bisim::equivalent(d1, d2, bisim::Equivalence::kStrong));
}

// ------------------------------------------------------- solver laws --

TEST_P(RandomSeed, SteadyStateIsDistributionWithZeroNetFlow) {
  const markov::Ctmc c = random_ctmc(GetParam(), 12);
  const auto pi = markov::steady_state(c);
  double sum = 0.0;
  for (const double p : pi) {
    EXPECT_GE(p, -1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Global balance: net probability flow through every state is zero.
  std::vector<double> net(c.num_states(), 0.0);
  for (const auto& t : c.transitions()) {
    net[t.src] -= pi[t.src] * t.rate;
    net[t.dst] += pi[t.src] * t.rate;
  }
  for (const double n : net) {
    EXPECT_NEAR(n, 0.0, 1e-8);
  }
}

TEST_P(RandomSeed, TransientConvergesToSteadyState) {
  const markov::Ctmc c = random_ctmc(GetParam(), 8);
  const auto pi = markov::steady_state(c);
  const auto pt = markov::transient_distribution(c, 500.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    EXPECT_NEAR(pt[s], pi[s], 1e-6) << "state " << s;
  }
}

TEST_P(RandomSeed, TransientIsAlwaysADistribution) {
  const markov::Ctmc c = random_ctmc(GetParam(), 8);
  for (const double t : {0.01, 0.5, 3.0, 20.0}) {
    const auto pt = markov::transient_distribution(c, t);
    const double sum = std::accumulate(pt.begin(), pt.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t = " << t;
  }
}

TEST_P(RandomSeed, ThroughputConservationAcrossCut) {
  // In a unidirectional ring, the steady flow across every edge of the
  // cycle is identical.
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> rate(0.2, 4.0);
  markov::Ctmc c;
  const std::size_t n = 6;
  c.add_states(n);
  std::vector<double> rates;
  for (markov::MState s = 0; s < n; ++s) {
    rates.push_back(rate(rng));
    c.add_transition(s, (s + 1) % n, rates.back(),
                     "edge" + std::to_string(s));
  }
  const auto pi = markov::steady_state(c);
  const double flow0 = markov::throughput(c, pi, "edge0");
  for (std::size_t e = 1; e < n; ++e) {
    EXPECT_NEAR(markov::throughput(c, pi, "edge" + std::to_string(e)), flow0,
                1e-9);
  }
}

// ---------------------------------------------------- lumping soundness --

TEST_P(RandomSeed, StrongLumpingPreservesSteadyMeasures) {
  // Duplicate a random CTMC into two symmetric copies sharing the labels;
  // lumping must fold the copies and preserve all throughputs.
  const markov::Ctmc base = random_ctmc(GetParam(), 6);
  imc::Imc m;
  const std::size_t n = base.num_states();
  m.add_states(2 * n);
  for (const auto& t : base.transitions()) {
    m.add_markovian(t.src, t.rate, t.dst, t.label);
    m.add_markovian(static_cast<imc::StateId>(t.src + n), t.rate,
                    static_cast<imc::StateId>(t.dst + n), t.label);
  }
  // Couple the copies symmetrically so the whole chain is irreducible.
  m.add_markovian(0, 1.0, static_cast<imc::StateId>(n), "swap");
  m.add_markovian(static_cast<imc::StateId>(n), 1.0, 0, "swap");

  const auto p = imc::lump_strong(m);
  EXPECT_EQ(p.num_blocks(), n);  // the two copies fold
  const auto q = imc::quotient_imc(m, p, /*branching=*/false);

  const auto full = imc::to_ctmc(m);
  const auto small = imc::to_ctmc(q);
  const auto pi_full = markov::steady_state(full.ctmc);
  const auto pi_small = markov::steady_state(small.ctmc);
  for (const char* label : {"red", "green", "blue", "swap"}) {
    EXPECT_NEAR(markov::throughput(full.ctmc, pi_full, label),
                markov::throughput(small.ctmc, pi_small, label), 1e-8)
        << label;
  }
}

TEST_P(RandomSeed, BranchingLumpThenExtractEqualsExtractDirectly) {
  // For deterministic-tau IMCs, lumping before extraction must not change
  // the chain's steady throughputs.
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> rate(0.2, 4.0);
  imc::Imc m;
  const std::size_t n = 8;
  m.add_states(2 * n);
  // Cycle: markovian hop to a tau stepping stone, tau into the next state.
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = static_cast<imc::StateId>(2 * i);
    const auto mid = static_cast<imc::StateId>(2 * i + 1);
    const auto next = static_cast<imc::StateId>((2 * i + 2) % (2 * n));
    m.add_markovian(s, rate(rng), mid, "hop" + std::to_string(i));
    m.add_interactive(mid, "i", next);
  }
  const auto direct = imc::to_ctmc(m);
  const auto lumped = imc::minimize_imc(m);
  const auto via_lump = imc::to_ctmc(lumped.quotient);
  const auto pi_d = markov::steady_state(direct.ctmc);
  const auto pi_l = markov::steady_state(via_lump.ctmc);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string label = "hop" + std::to_string(i);
    EXPECT_NEAR(markov::throughput(direct.ctmc, pi_d, label),
                markov::throughput(via_lump.ctmc, pi_l, label), 1e-8);
  }
}

// ------------------------------------------------ generator determinism --

TEST_P(RandomSeed, GenerationIsDeterministic) {
  using namespace multival::proc;
  Program p;
  const int cap = static_cast<int>(GetParam() % 3) + 1;
  p.define("Q", {"n"},
           choice({guard(evar("n") < lit(cap),
                         prefix("IN", call("Q", {evar("n") + lit(1)}))),
                   guard(evar("n") > lit(0),
                         prefix("OUT", call("Q", {evar("n") - lit(1)})))}));
  const lts::Lts a = generate(p, "Q", {0});
  const lts::Lts b = generate(p, "Q", {0});
  EXPECT_EQ(lts::to_aut(a), lts::to_aut(b));
}

// -------------------------------- decoration-path consistency (exp flow) --

TEST_P(RandomSeed, ConstraintOrientedMatchesDirectDecoration) {
  // A cyclic two-phase system timed once via insert_delays (constraint
  // oriented) and once via decorate_with_rates must induce the same
  // steady-state cycle time.
  using namespace multival::proc;
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> rate(0.5, 5.0);
  const double r1 = rate(rng);
  const double r2 = rate(rng);

  Program direct;
  direct.define("Cycle", {}, prefix("P1", prefix("P2", call("Cycle"))));
  const auto via_rates = core::close_model(core::decorate_with_rates(
      generate(direct, "Cycle"), {{"P1", r1}, {"P2", r2}}));

  Program constraint;
  constraint.define("Cycle", {},
                    prefix("A_S", prefix("A_E",
                           prefix("B_S", prefix("B_E", call("Cycle"))))));
  const auto via_delays = core::close_model(core::insert_delays(
      generate(constraint, "Cycle"),
      {{"A_S", "A_E", phase::PhaseType::exponential(r1)},
       {"B_S", "B_E", phase::PhaseType::exponential(r2)}}));

  const auto pi_r = markov::steady_state(via_rates.ctmc);
  const auto pi_d = markov::steady_state(via_delays.ctmc);
  EXPECT_NEAR(markov::throughput(via_rates.ctmc, pi_r, "P1"),
              markov::throughput(via_delays.ctmc, pi_d, "A_E"), 1e-9);
}

}  // namespace
