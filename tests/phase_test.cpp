// Unit tests for the phase/ module: phase-type distributions and fixed-delay
// approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "imc/compose.hpp"
#include "markov/absorption.hpp"
#include "phase/fit.hpp"
#include "phase/phase_type.hpp"

namespace {

using namespace multival;
using namespace multival::phase;

TEST(PhaseTypeTest, ExponentialMoments) {
  const PhaseType e = PhaseType::exponential(4.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.25);
  EXPECT_DOUBLE_EQ(e.variance(), 0.0625);
  EXPECT_DOUBLE_EQ(e.cv2(), 1.0);
}

TEST(PhaseTypeTest, ErlangMoments) {
  // Erlang(k=4, rate 2): mean 2, var 1, cv2 = 1/4.
  const PhaseType e = PhaseType::erlang(4, 2.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_DOUBLE_EQ(e.variance(), 1.0);
  EXPECT_DOUBLE_EQ(e.cv2(), 0.25);
  EXPECT_EQ(e.num_phases(), 4u);
}

TEST(PhaseTypeTest, HypoexponentialMoments) {
  const PhaseType h = PhaseType::hypoexponential({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  EXPECT_DOUBLE_EQ(h.variance(), 1.25);
  EXPECT_LT(h.cv2(), 1.0);
}

TEST(PhaseTypeTest, HyperexponentialMoments) {
  const PhaseType h = PhaseType::hyperexponential({0.5, 0.5}, {1.0, 3.0});
  EXPECT_NEAR(h.mean(), 0.5 * 1.0 + 0.5 / 3.0, 1e-12);
  EXPECT_GT(h.cv2(), 1.0);  // hyperexponential is over-dispersed
}

TEST(PhaseTypeTest, Validation) {
  EXPECT_THROW(PhaseType({1.0}, {0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(PhaseType({0.5}, {1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(PhaseType({1.0}, {1.0}, {0.5}), std::invalid_argument);
  EXPECT_THROW(PhaseType::erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW(PhaseType::hypoexponential({}), std::invalid_argument);
  EXPECT_THROW(PhaseType::hyperexponential({1.0}, {}),
               std::invalid_argument);
}

TEST(PhaseTypeTest, CdfExponentialClosedForm) {
  const PhaseType e = PhaseType::exponential(2.0);
  for (const double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(e.cdf(t), 1.0 - std::exp(-2.0 * t), 1e-9);
  }
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
}

TEST(PhaseTypeTest, CdfErlangClosedForm) {
  // Erlang(2, rate r): F(t) = 1 - e^{-rt}(1 + rt).
  const double r = 3.0;
  const PhaseType e = PhaseType::erlang(2, r);
  for (const double t : {0.2, 0.7, 1.5}) {
    const double expect = 1.0 - std::exp(-r * t) * (1.0 + r * t);
    EXPECT_NEAR(e.cdf(t), expect, 1e-9);
  }
}

TEST(PhaseTypeTest, CdfIsMonotone) {
  const PhaseType h = PhaseType::hyperexponential({0.3, 0.7}, {0.5, 5.0});
  double prev = 0.0;
  for (int i = 1; i <= 20; ++i) {
    const double f = h.cdf(0.2 * i);
    EXPECT_GE(f, prev - 1e-12);
    prev = f;
  }
  EXPECT_NEAR(h.cdf(100.0), 1.0, 1e-6);
}

TEST(PhaseTypeTest, AbsorbingCtmcMeanMatches) {
  const PhaseType e = PhaseType::erlang(3, 1.5);
  const auto c = e.absorbing_ctmc();
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(c), e.mean(),
              1e-9);
}

// --- delay_process ---------------------------------------------------------------

TEST(DelayProcess, StructureAndClosure) {
  const PhaseType d = PhaseType::erlang(2, 4.0);
  const imc::Imc m = delay_process(d, "START", "END");
  // idle + 2 phases + done.
  EXPECT_EQ(m.num_states(), 4u);
  EXPECT_EQ(m.num_interactive(), 2u);
  EXPECT_EQ(m.num_markovian(), 2u);
}

TEST(DelayProcess, InsertedDelayHasRightMean) {
  // A driver that starts the delay, waits for the end, then stops:
  // the composed, closed system's absorption time = the delay's mean.
  const PhaseType d = PhaseType::erlang(4, 8.0);  // mean 0.5
  const imc::Imc delay = delay_process(d, "START", "END");
  imc::Imc driver;
  driver.add_states(3);
  driver.add_interactive(0, "START", 1);
  driver.add_interactive(1, "END", 2);
  const std::vector<std::string> sync{"START", "END"};
  imc::Imc sys = imc::parallel(driver, delay, sync);
  sys = imc::maximal_progress(imc::hide_all(sys));
  const auto e = imc::to_ctmc(sys);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(e.ctmc), 0.5,
              1e-9);
}

TEST(DelayProcess, HyperexponentialRejected) {
  const PhaseType h = PhaseType::hyperexponential({0.5, 0.5}, {1.0, 2.0});
  EXPECT_THROW((void)delay_process(h, "S", "E"), std::invalid_argument);
}

// --- fixed-delay fitting ------------------------------------------------------------

TEST(Fit, ErlangForFixedDelayMatchesMean) {
  for (const std::size_t k : {1u, 2u, 8u, 32u}) {
    const PhaseType d = erlang_for_fixed_delay(2.5, k);
    EXPECT_NEAR(d.mean(), 2.5, 1e-12);
    EXPECT_NEAR(d.cv2(), 1.0 / static_cast<double>(k), 1e-12);
  }
  EXPECT_THROW((void)erlang_for_fixed_delay(0.0, 4), std::invalid_argument);
  EXPECT_THROW((void)erlang_for_fixed_delay(1.0, 0), std::invalid_argument);
}

TEST(Fit, KolmogorovDistanceDecreasesButSaturates) {
  const double d = 1.0;
  double prev = 1.0;
  for (const std::size_t k : {1u, 4u, 16u, 64u}) {
    const double dist =
        kolmogorov_distance_to_fixed(erlang_for_fixed_delay(d, k), d);
    EXPECT_LT(dist, prev);
    prev = dist;
  }
  // The sup-norm can never beat ~0.5 against a jump.
  EXPECT_GT(prev, 0.45);
}

TEST(Fit, WassersteinDecaysLikeInverseSqrtK) {
  const double d = 1.0;
  double prev = 10.0;
  for (const std::size_t k : {1u, 4u, 16u, 64u}) {
    const double w =
        wasserstein_distance_to_fixed(erlang_for_fixed_delay(d, k), d, 600);
    EXPECT_LT(w, prev);
    // Theory: W1 ~ d * sqrt(2 / (pi k)).
    const double theory = d * std::sqrt(2.0 / (M_PI * static_cast<double>(k)));
    EXPECT_NEAR(w, theory, 0.25 * theory) << "k = " << k;
    prev = w;
  }
  EXPECT_LT(prev, 0.15);  // Erlang-64 approximates the fixed delay well
}

TEST(Fit, EvaluateFixedDelayFit) {
  const FixedDelayFit f = evaluate_fixed_delay_fit(2.0, 16);
  EXPECT_EQ(f.phases, 16u);
  EXPECT_NEAR(f.mean_error, 0.0, 1e-12);
  EXPECT_NEAR(f.cv2, 1.0 / 16.0, 1e-12);
  EXPECT_GT(f.kolmogorov, 0.0);
  EXPECT_LT(f.kolmogorov, 1.0);
}

class ErlangSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ErlangSweep, SpaceAccuracyMonotonicity) {
  const std::size_t k = GetParam();
  const FixedDelayFit fk = evaluate_fixed_delay_fit(1.0, k);
  const FixedDelayFit f2k = evaluate_fixed_delay_fit(1.0, 2 * k);
  EXPECT_EQ(fk.phases, k);
  EXPECT_EQ(f2k.phases, 2 * k);
  EXPECT_GT(fk.cv2, f2k.cv2);              // accuracy improves...
  EXPECT_LT(fk.phases, f2k.phases);        // ...at state-space cost
  EXPECT_GT(fk.kolmogorov, f2k.kolmogorov);
}

INSTANTIATE_TEST_SUITE_P(Ks, ErlangSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

}  // namespace
