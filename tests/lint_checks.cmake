# Model lint checks, run by ctest as:
#   cmake -DCLI=<path to multival_cli> -DMODELS=<examples/models dir>
#         -P lint_checks.cmake
#
# CI invariant for the shipped models: every builtin case-study generator
# and every example .proc model lints with zero errors (warnings and
# advisories are allowed — the noc scenarios use the restriction idiom on
# purpose).  A deliberately ill-formed model must fail with the documented
# MV0xx code on stdout, not a crash or a silent pass.
if(NOT DEFINED CLI OR NOT DEFINED MODELS OR NOT DEFINED FABRICS
   OR NOT DEFINED FIXTURES OR NOT DEFINED PROC_FIXTURES)
  message(FATAL_ERROR
    "pass -DCLI=<path to multival_cli> -DMODELS=<examples/models dir> "
    "-DFABRICS=<examples/fabrics dir> -DFIXTURES=<tests/fabrics dir> "
    "-DPROC_FIXTURES=<tests/models dir>")
endif()

function(expect_lint_clean)
  execute_process(COMMAND ${CLI} lint ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "multival_cli lint ${ARGN}: expected exit 0, got ${rc}:\n${out}${err}")
  endif()
endfunction()

# expect_lint_error(<MV code> <lint args...>): exit 1 and the code printed.
function(expect_lint_error code)
  execute_process(COMMAND ${CLI} lint ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "multival_cli lint ${ARGN}: expected exit 1, got ${rc}:\n${out}${err}")
  endif()
  if(NOT out MATCHES "${code}")
    message(FATAL_ERROR
      "multival_cli lint ${ARGN}: expected ${code} in output, got:\n${out}")
  endif()
endfunction()

# (a) every builtin case-study generator is error-free.
expect_lint_clean(--builtin all)

# (b) every example model is error-free, standalone and from its entry.
file(GLOB models ${MODELS}/*.proc)
if(NOT models)
  message(FATAL_ERROR "no .proc models found under ${MODELS}")
endif()
foreach(model IN LISTS models)
  expect_lint_clean(${model})
endforeach()
expect_lint_clean(${MODELS}/mutex.proc System --strict)
expect_lint_clean(${MODELS}/counter.proc Count 0 --strict)

# (c) a never-firing sync gate whose operand is stuck from its initial
# state is the MV003 structural-deadlock error.
file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_gate.proc
  "process Left := A ; Left endproc\n"
  "process Stuck := GO ; stop endproc\n"
  "process System := Left |[GO]| Stuck endproc\n")
expect_lint_error(MV003 ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_gate.proc)
expect_lint_error(MV003 ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_gate.proc
  --json)

# (d) unparseable text is the MV010 diagnostic (with a position), not a
# tool crash.
file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_syntax.proc
  "process P := ; stop endproc\n")
expect_lint_error(MV010 ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_syntax.proc)

# (e) an undefined entry process is caught even when the definitions are
# fine on their own.
expect_lint_error(MV001 ${MODELS}/mutex.proc NoSuchProcess)

# ---- xMAS netlist lint (the xmas subcommand, MV03x) --------------------------

# Same contracts as expect_lint_clean/expect_lint_error, for `xmas --lint`.
function(expect_xmas_clean)
  execute_process(COMMAND ${CLI} xmas ${ARGN} --lint
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "multival_cli xmas ${ARGN} --lint: expected exit 0, got ${rc}:\n"
      "${out}${err}")
  endif()
endfunction()

function(expect_xmas_finding code)
  execute_process(COMMAND ${CLI} xmas ${ARGN} --lint --strict
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "multival_cli xmas ${ARGN} --lint --strict: expected exit 1, got "
      "${rc}:\n${out}${err}")
  endif()
  if(NOT out MATCHES "${code}")
    message(FATAL_ERROR
      "multival_cli xmas ${ARGN} --lint --strict: expected ${code} in "
      "output, got:\n${out}")
  endif()
endfunction()

# (f) every healthy builtin fabric and every example .xmas netlist is
# error-free (mesh2 carries an intentional MV033 warning); the shipped
# seeded-deadlock fabric must fail with MV031.
expect_xmas_clean(--builtin credit-loop)
expect_xmas_clean(--builtin vc-pair)
expect_xmas_clean(--builtin mesh2)
expect_xmas_finding(MV031 --builtin credit-loop-deadlock)
file(GLOB fabrics ${FABRICS}/*.xmas)
if(NOT fabrics)
  message(FATAL_ERROR "no .xmas fabrics found under ${FABRICS}")
endif()
foreach(fabric IN LISTS fabrics)
  expect_xmas_clean(${fabric})
endforeach()

# (g) each golden MV03x fixture fails with its documented code, and its
# repaired twin lints clean even under --strict (warnings promoted).
foreach(check 030 031 032 033)
  expect_xmas_finding(MV${check} ${FIXTURES}/mv${check}_seeded.xmas)
  expect_xmas_clean(${FIXTURES}/mv${check}_repaired.xmas --strict)
endforeach()

# (h) the MV031 seeded deadlock is rejected *structurally*: the lint report
# must state that zero states were generated.
execute_process(COMMAND ${CLI} xmas ${FIXTURES}/mv031_seeded.xmas --lint
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT out MATCHES "0 states generated")
  message(FATAL_ERROR
    "mv031_seeded lint: expected exit 1 with '0 states generated', got "
    "${rc}:\n${out}${err}")
endif()

# (i) unparseable .xmas text is the MV010 diagnostic with a position, not a
# crash.
file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_fabric.xmas
  "fabric broken\nqueue q capacity=zero\n")
execute_process(COMMAND ${CLI} xmas
  ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_fabric.xmas --lint
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT out MATCHES "MV010")
  message(FATAL_ERROR
    "broken .xmas lint: expected exit 1 with MV010, got ${rc}:\n${out}${err}")
endif()

# ---- MV04x static bound analyzer (lint --bounds) ----------------------------

# (j) the seeded unbounded counter is an MV041 *error* — exit 1 without
# --strict — and the proof is purely static: the report must state that
# zero states were generated.  Its guard-repaired twin lints clean.
execute_process(COMMAND ${CLI} lint ${PROC_FIXTURES}/mv041_seeded.proc
    System --bounds
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT out MATCHES "MV041"
   OR NOT out MATCHES "0 states generated")
  message(FATAL_ERROR
    "mv041_seeded lint --bounds: expected exit 1 with MV041 and "
    "'0 states generated', got ${rc}:\n${out}${err}")
endif()
expect_lint_clean(${PROC_FIXTURES}/mv041_repaired.proc System --bounds)

# (k) the seeded over-budget pair: MV042 is an advisory, so it fails the
# lint only under --strict; the narrowed twin emits no MV042 at the very
# same budget.
execute_process(COMMAND ${CLI} lint ${PROC_FIXTURES}/mv042_seeded.proc
    System --bounds --budget 5 --strict
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT out MATCHES "MV042")
  message(FATAL_ERROR
    "mv042_seeded lint --bounds --budget 5 --strict: expected exit 1 "
    "with MV042, got ${rc}:\n${out}${err}")
endif()
execute_process(COMMAND ${CLI} lint ${PROC_FIXTURES}/mv042_repaired.proc
    System --bounds --budget 5
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR out MATCHES "MV042")
  message(FATAL_ERROR
    "mv042_repaired lint --bounds --budget 5: expected exit 0 without "
    "MV042, got ${rc}:\n${out}${err}")
endif()

# (l) --bounds on a model file without an Entry process is a usage error
# (exit 2), not a crash or a silent structural-only pass.
execute_process(COMMAND ${CLI} lint ${PROC_FIXTURES}/mv041_seeded.proc
    --bounds
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "needs an Entry process")
  message(FATAL_ERROR
    "lint --bounds without Entry: expected exit 2 usage error, got "
    "${rc}:\n${out}${err}")
endif()

message(STATUS "all model lint checks passed")
