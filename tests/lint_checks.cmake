# Model lint checks, run by ctest as:
#   cmake -DCLI=<path to multival_cli> -DMODELS=<examples/models dir>
#         -P lint_checks.cmake
#
# CI invariant for the shipped models: every builtin case-study generator
# and every example .proc model lints with zero errors (warnings and
# advisories are allowed — the noc scenarios use the restriction idiom on
# purpose).  A deliberately ill-formed model must fail with the documented
# MV0xx code on stdout, not a crash or a silent pass.
if(NOT DEFINED CLI OR NOT DEFINED MODELS)
  message(FATAL_ERROR
    "pass -DCLI=<path to multival_cli> -DMODELS=<examples/models dir>")
endif()

function(expect_lint_clean)
  execute_process(COMMAND ${CLI} lint ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "multival_cli lint ${ARGN}: expected exit 0, got ${rc}:\n${out}${err}")
  endif()
endfunction()

# expect_lint_error(<MV code> <lint args...>): exit 1 and the code printed.
function(expect_lint_error code)
  execute_process(COMMAND ${CLI} lint ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "multival_cli lint ${ARGN}: expected exit 1, got ${rc}:\n${out}${err}")
  endif()
  if(NOT out MATCHES "${code}")
    message(FATAL_ERROR
      "multival_cli lint ${ARGN}: expected ${code} in output, got:\n${out}")
  endif()
endfunction()

# (a) every builtin case-study generator is error-free.
expect_lint_clean(--builtin all)

# (b) every example model is error-free, standalone and from its entry.
file(GLOB models ${MODELS}/*.proc)
if(NOT models)
  message(FATAL_ERROR "no .proc models found under ${MODELS}")
endif()
foreach(model IN LISTS models)
  expect_lint_clean(${model})
endforeach()
expect_lint_clean(${MODELS}/mutex.proc System --strict)
expect_lint_clean(${MODELS}/counter.proc Count 0 --strict)

# (c) a never-firing sync gate whose operand is stuck from its initial
# state is the MV003 structural-deadlock error.
file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_gate.proc
  "process Left := A ; Left endproc\n"
  "process Stuck := GO ; stop endproc\n"
  "process System := Left |[GO]| Stuck endproc\n")
expect_lint_error(MV003 ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_gate.proc)
expect_lint_error(MV003 ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_gate.proc
  --json)

# (d) unparseable text is the MV010 diagnostic (with a position), not a
# tool crash.
file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_syntax.proc
  "process P := ; stop endproc\n")
expect_lint_error(MV010 ${CMAKE_CURRENT_BINARY_DIR}/lint_broken_syntax.proc)

# (e) an undefined entry process is caught even when the definitions are
# fine on their own.
expect_lint_error(MV001 ${MODELS}/mutex.proc NoSuchProcess)

message(STATUS "all model lint checks passed")
