// Unit tests for the proc/ module: expressions, terms, and LTS generation
// from LOTOS-like process definitions.
#include <gtest/gtest.h>

#include "bisim/equivalence.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "proc/expr.hpp"
#include "proc/generator.hpp"
#include "proc/process.hpp"

namespace {

using namespace multival;
using namespace multival::proc;
using lts::Lts;

// --- expressions -----------------------------------------------------------

TEST(Expr, ConstAndVar) {
  Env env;
  env.bind("x", 5);
  EXPECT_EQ(lit(3)->eval(env), 3);
  EXPECT_EQ(evar("x")->eval(env), 5);
  EXPECT_THROW((void)evar("y")->eval(env), std::out_of_range);
}

TEST(Expr, Arithmetic) {
  Env env;
  env.bind("x", 7);
  EXPECT_EQ((evar("x") + lit(3))->eval(env), 10);
  EXPECT_EQ((evar("x") - lit(3))->eval(env), 4);
  EXPECT_EQ((evar("x") * lit(2))->eval(env), 14);
  EXPECT_EQ((evar("x") / lit(2))->eval(env), 3);
  EXPECT_EQ((evar("x") % lit(4))->eval(env), 3);
  EXPECT_EQ((-evar("x"))->eval(env), -7);
  EXPECT_EQ(emin(evar("x"), lit(3))->eval(env), 3);
  EXPECT_EQ(emax(evar("x"), lit(3))->eval(env), 7);
}

TEST(Expr, DivisionByZeroThrows) {
  Env env;
  EXPECT_THROW((void)(lit(1) / lit(0))->eval(env), std::domain_error);
  EXPECT_THROW((void)(lit(1) % lit(0))->eval(env), std::domain_error);
}

TEST(Expr, Comparisons) {
  Env env;
  EXPECT_EQ((lit(2) == lit(2))->eval(env), 1);
  EXPECT_EQ((lit(2) != lit(2))->eval(env), 0);
  EXPECT_EQ((lit(1) < lit(2))->eval(env), 1);
  EXPECT_EQ((lit(2) <= lit(2))->eval(env), 1);
  EXPECT_EQ((lit(3) > lit(2))->eval(env), 1);
  EXPECT_EQ((lit(1) >= lit(2))->eval(env), 0);
}

TEST(Expr, BooleansShortCircuit) {
  Env env;
  // (0 && (1/0)) must not evaluate the division.
  EXPECT_EQ((lit(0) && (lit(1) / lit(0)))->eval(env), 0);
  EXPECT_EQ((lit(1) || (lit(1) / lit(0)))->eval(env), 1);
  EXPECT_EQ((!lit(0))->eval(env), 1);
  EXPECT_EQ((!lit(5))->eval(env), 0);
}

TEST(Expr, FreeVarsAreSortedDeduped) {
  const auto e = (evar("b") + evar("a")) * evar("b");
  const auto& fv = e->free_vars();
  ASSERT_EQ(fv.size(), 2u);
  EXPECT_EQ(fv[0], "a");
  EXPECT_EQ(fv[1], "b");
}

TEST(Expr, ToString) {
  EXPECT_EQ((evar("x") + lit(1))->to_string(), "(x + 1)");
}

// --- Env ----------------------------------------------------------------------

TEST(EnvTest, BindAndLookup) {
  Env env;
  env.bind("b", 2);
  env.bind("a", 1);
  env.bind("b", 3);  // rebind
  EXPECT_EQ(env.size(), 2u);
  EXPECT_EQ(*env.lookup("a"), 1);
  EXPECT_EQ(*env.lookup("b"), 3);
  EXPECT_FALSE(env.lookup("c").has_value());
}

TEST(EnvTest, EntriesSortedByName) {
  Env env;
  env.bind("z", 1);
  env.bind("a", 2);
  ASSERT_EQ(env.entries().size(), 2u);
  EXPECT_EQ(env.entries()[0].first, "a");
}

TEST(EnvTest, RestrictedTo) {
  Env env;
  env.bind("a", 1);
  env.bind("b", 2);
  env.bind("c", 3);
  const std::vector<std::string> keep{"a", "c", "zz"};
  const Env r = env.restricted_to(keep);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.lookup("a").has_value());
  EXPECT_FALSE(r.lookup("b").has_value());
}

TEST(EnvTest, EqualityAndHash) {
  Env a;
  a.bind("x", 1);
  Env b;
  b.bind("x", 1);
  Env c;
  c.bind("x", 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
}

// --- term construction ----------------------------------------------------------

TEST(Terms, ReservedGatesRejected) {
  EXPECT_THROW((void)prefix("i", stop()), std::invalid_argument);
  EXPECT_THROW((void)prefix("exit", stop()), std::invalid_argument);
  EXPECT_THROW((void)prefix("", stop()), std::invalid_argument);
}

TEST(Terms, EmptyAcceptRangeRejected) {
  EXPECT_THROW((void)accept("x", 3, 1), std::invalid_argument);
}

TEST(Terms, ChoiceSimplifications) {
  EXPECT_EQ(choice({})->kind(), Term::Kind::kStop);
  const TermPtr p = prefix("A", stop());
  EXPECT_EQ(choice({p}), p);
}

TEST(Terms, PrefixFreeVarsAccountForBinding) {
  // A !x ?y:0..1 !y ; B !z — free: x, z (y is bound by the accept).
  const TermPtr t =
      prefix("A", {emit(evar("x")), accept("y", 0, 1), emit(evar("y"))},
             prefix("B", {emit(evar("z"))}, stop()));
  const auto& fv = t->free_vars();
  ASSERT_EQ(fv.size(), 2u);
  EXPECT_EQ(fv[0], "x");
  EXPECT_EQ(fv[1], "z");
}

TEST(Terms, ProgramRejectsRedefinition) {
  Program p;
  p.define("P", {}, stop());
  EXPECT_THROW(p.define("P", {}, stop()), std::invalid_argument);
  EXPECT_TRUE(p.has_definition("P"));
  EXPECT_FALSE(p.has_definition("Q"));
  EXPECT_THROW((void)p.definition("Q"), std::out_of_range);
}

// --- generation: sequential ------------------------------------------------------

TEST(Generate, StopIsSingleDeadlockState) {
  Program p;
  const Lts l = generate_term(p, stop());
  EXPECT_EQ(l.num_states(), 1u);
  EXPECT_EQ(l.num_transitions(), 0u);
}

TEST(Generate, ExitEmitsExitAction) {
  Program p;
  const Lts l = generate_term(p, exit_());
  EXPECT_EQ(l.num_states(), 2u);
  ASSERT_EQ(l.out(l.initial_state()).size(), 1u);
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "exit");
}

TEST(Generate, PrefixSequence) {
  Program p;
  const Lts l = generate_term(p, prefix("A", prefix("B", stop())));
  EXPECT_EQ(l.num_states(), 3u);
  EXPECT_EQ(l.num_transitions(), 2u);
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "A");
}

TEST(Generate, EmitRendersValues) {
  Program p;
  const Lts l =
      generate_term(p, prefix("CH", {emit(lit(2) + lit(3))}, stop()));
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "CH !5");
}

TEST(Generate, AcceptEnumeratesRange) {
  Program p;
  const Lts l = generate_term(p, prefix("CH", {accept("x", 0, 2)}, stop()));
  EXPECT_EQ(l.out(l.initial_state()).size(), 3u);
}

TEST(Generate, AcceptBindsContinuation) {
  Program p;
  const Lts l = generate_term(
      p, prefix("IN", {accept("x", 1, 2)},
                prefix("OUT", {emit(evar("x") * lit(10))}, stop())));
  // IN !1 -> OUT !10, IN !2 -> OUT !20.
  bool saw10 = false;
  bool saw20 = false;
  for (const auto& t : l.all_transitions()) {
    const auto name = l.actions().name(t.action);
    saw10 = saw10 || name == "OUT !10";
    saw20 = saw20 || name == "OUT !20";
  }
  EXPECT_TRUE(saw10);
  EXPECT_TRUE(saw20);
}

TEST(Generate, AcceptVisibleToLaterOffersOfSameAction) {
  Program p;
  const Lts l = generate_term(
      p, prefix("CH", {accept("x", 1, 2), emit(evar("x") + lit(1))}, stop()));
  std::vector<std::string> labels;
  for (const auto& e : l.out(l.initial_state())) {
    labels.emplace_back(l.actions().name(e.action));
  }
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_NE(std::find(labels.begin(), labels.end(), "CH !1 !2"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "CH !2 !3"), labels.end());
}

TEST(Generate, GuardPrunesBranches) {
  Program p;
  const TermPtr t = choice({guard(lit(1), prefix("YES", stop())),
                            guard(lit(0), prefix("NO", stop()))});
  const Lts l = generate_term(p, t);
  ASSERT_EQ(l.out(l.initial_state()).size(), 1u);
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "YES");
}

TEST(Generate, RecursionClosesCycle) {
  Program p;
  p.define("Clock", {}, prefix("TICK", call("Clock")));
  const Lts l = generate(p, "Clock");
  EXPECT_EQ(l.num_states(), 1u);
  EXPECT_EQ(l.num_transitions(), 1u);
}

TEST(Generate, ParameterisedCounter) {
  Program p;
  p.define("Count", {"n"},
           choice({guard(evar("n") < lit(3),
                         prefix("UP", call("Count", {evar("n") + lit(1)}))),
                   guard(evar("n") > lit(0),
                         prefix("DOWN", call("Count", {evar("n") - lit(1)})))}));
  const Lts l = generate(p, "Count", {0});
  EXPECT_EQ(l.num_states(), 4u);  // n = 0..3
  EXPECT_EQ(l.num_transitions(), 6u);
}

TEST(Generate, CallArityChecked) {
  Program p;
  p.define("P", {"a", "b"}, stop());
  EXPECT_THROW((void)generate(p, "P", {1}), std::invalid_argument);
}

TEST(Generate, UndefinedProcessThrows) {
  Program p;
  EXPECT_THROW((void)generate(p, "Nope"), std::out_of_range);
}

TEST(Generate, UnguardedRecursionDetected) {
  Program p;
  p.define("Bad", {}, call("Bad"));
  EXPECT_THROW((void)generate(p, "Bad"), UnguardedRecursion);
}

TEST(Generate, StateLimitEnforced) {
  Program p;
  p.define("Grow", {"n"}, prefix("A", call("Grow", {evar("n") + lit(1)})));
  GenerateOptions opts;
  opts.max_states = 100;
  EXPECT_THROW((void)generate(p, "Grow", {0}, opts), StateSpaceLimit);
}

// --- on-the-fly deadlock search ----------------------------------------------------

TEST(FindDeadlock, FindsShortestTrace) {
  Program p;
  p.define("P", {},
           choice({prefix("LOOP", call("P")),
                   prefix("A", prefix("B", stop()))}));
  const DeadlockSearchResult r = find_deadlock(p, "P");
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0], "A");
  EXPECT_EQ(r.trace[1], "B");
}

TEST(FindDeadlock, ReportsAbsenceOnLiveSystem) {
  Program p;
  p.define("Clock", {}, prefix("TICK", call("Clock")));
  const DeadlockSearchResult r = find_deadlock(p, "Clock");
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.trace.empty());
}

TEST(FindDeadlock, StopsEarlyOnHugeSpaces) {
  // An unbounded counter with an immediate deadlock branch: the search must
  // terminate (BFS finds the depth-1 deadlock) even though full generation
  // would hit the state limit.
  Program p;
  p.define("Grow", {"n"},
           choice({prefix("UP", call("Grow", {evar("n") + lit(1)})),
                   prefix("DIE", stop())}));
  GenerateOptions opts;
  opts.max_states = 1000;
  const DeadlockSearchResult r = find_deadlock(p, "Grow", {0}, opts);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.trace.size(), 1u);
  EXPECT_LT(r.states_explored, 10u);
}

TEST(FindDeadlock, FindsCreditLeakInXstreamStyleModel) {
  // Miniature credit-loss model: one credit, never returned.
  Program p;
  p.define("Prod", {"cr"},
           guard(evar("cr") > lit(0),
                 prefix("SEND", call("Prod", {evar("cr") - lit(1)}))));
  const DeadlockSearchResult r = find_deadlock(p, "Prod", {1});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0], "SEND");
}

// --- generation: composition ------------------------------------------------------

TEST(Generate, SequentialComposition) {
  Program p;
  // (A; exit) >> (B; stop): A then tau then B.
  const Lts l = generate_term(
      p, seq(prefix("A", exit_()), prefix("B", stop())));
  EXPECT_EQ(l.num_states(), 4u);
  const auto ts = l.all_transitions();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(l.actions().name(ts[0].action), "A");
  // The exit of the first process becomes an internal step.
  bool has_tau = false;
  for (const auto& t : ts) {
    has_tau = has_tau || lts::ActionTable::is_tau(t.action);
  }
  EXPECT_TRUE(has_tau);
}

TEST(Generate, SeqPassesEnvironmentToContinuation) {
  Program p;
  p.define("Main", {"v"},
           seq(prefix("A", exit_()), prefix("OUT", {emit(evar("v"))}, stop())));
  const Lts l = generate(p, "Main", {42});
  bool saw = false;
  for (const auto& t : l.all_transitions()) {
    saw = saw || l.actions().name(t.action) == "OUT !42";
  }
  EXPECT_TRUE(saw);
}

TEST(Generate, InterleavingGeneratesDiamond) {
  Program p;
  const Lts l =
      generate_term(p, interleaving(prefix("A", stop()), prefix("B", stop())));
  EXPECT_EQ(l.num_states(), 4u);
  EXPECT_EQ(l.num_transitions(), 4u);
}

TEST(Generate, SynchronisationOnSharedGate) {
  Program p;
  const Lts l = generate_term(
      p, par(prefix("A", prefix("S", stop())), {"S"},
             prefix("B", prefix("S", stop()))));
  // A and B interleave, then S fires jointly: 4 + 1 states.
  EXPECT_EQ(l.num_states(), 5u);
  EXPECT_EQ(l.num_transitions(), 5u);
}

TEST(Generate, ValueNegotiationEmitAccept) {
  Program p;
  // Sender emits 3; receiver accepts 0..5 and then re-emits what it got.
  const Lts l = generate_term(
      p, par(prefix("CH", {emit(lit(3))}, stop()), {"CH"},
             prefix("CH", {accept("x", 0, 5)},
                    prefix("GOT", {emit(evar("x"))}, stop()))));
  ASSERT_EQ(l.out(l.initial_state()).size(), 1u);
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "CH !3");
  bool saw = false;
  for (const auto& t : l.all_transitions()) {
    saw = saw || l.actions().name(t.action) == "GOT !3";
  }
  EXPECT_TRUE(saw);
}

TEST(Generate, ValueMismatchBlocks) {
  Program p;
  const Lts l = generate_term(
      p, par(prefix("CH", {emit(lit(1))}, stop()), {"CH"},
             prefix("CH", {emit(lit(2))}, stop())));
  EXPECT_EQ(l.num_transitions(), 0u);
}

TEST(Generate, ExitSynchronisesInParallel) {
  Program p;
  const Lts l = generate_term(
      p, par(prefix("A", exit_()), {}, prefix("B", exit_())));
  // A and B interleave (4 states), then joint exit.
  EXPECT_EQ(l.num_states(), 5u);
  bool exit_seen = false;
  for (const auto& t : l.all_transitions()) {
    exit_seen = exit_seen || lts::ActionTable::is_exit(t.action);
  }
  EXPECT_TRUE(exit_seen);
}

TEST(Generate, HideMakesTau) {
  Program p;
  const Lts l = generate_term(
      p, hide({"S"}, par(prefix("S", stop()), {"S"}, prefix("S", stop()))));
  ASSERT_EQ(l.num_transitions(), 1u);
  EXPECT_TRUE(lts::ActionTable::is_tau(l.all_transitions()[0].action));
}

TEST(Generate, HideIsGateWide) {
  Program p;
  const Lts l = generate_term(
      p, hide({"CH"}, prefix("CH", {emit(lit(7))}, prefix("KEEP", stop()))));
  const auto ts = l.all_transitions();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_TRUE(lts::ActionTable::is_tau(ts[0].action));
  EXPECT_EQ(l.actions().name(ts[1].action), "KEEP");
}

TEST(Generate, RenameChangesGateKeepsValues) {
  Program p;
  const Lts l = generate_term(
      p, rename({{"A", "B"}}, prefix("A", {emit(lit(1))}, stop())));
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "B !1");
}

TEST(Generate, RenameAffectsSynchronisationStructurally) {
  Program p;
  // rename A->S on left, then sync on S with right.
  const Lts l = generate_term(
      p, par(rename({{"A", "S"}}, prefix("A", stop())), {"S"},
             prefix("S", stop())));
  EXPECT_EQ(l.num_transitions(), 1u);
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "S");
}

// --- end-to-end sanity: a 2-place buffer ----------------------------------------

Program buffer_program() {
  Program p;
  // Cell: forwards one value at a time from IN to OUT.
  p.define("CellA", {},
           prefix("IN", {accept("x", 0, 1)},
                  prefix("MID", {emit(evar("x"))}, call("CellA"))));
  p.define("CellB", {},
           prefix("MID", {accept("x", 0, 1)},
                  prefix("OUT", {emit(evar("x"))}, call("CellB"))));
  p.define("Buffer", {},
           hide({"MID"}, par(call("CellA"), {"MID"}, call("CellB"))));
  return p;
}

TEST(Generate, TwoPlaceBufferIsDeadlockFree) {
  const Program p = buffer_program();
  const Lts l = generate(p, "Buffer");
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
  EXPECT_GT(l.num_states(), 4u);
}

TEST(Generate, BufferMinimisesToFifo) {
  // After hiding MID and minimising modulo branching bisimulation, the
  // 2-cell pipeline of 1-value buffers over {0,1} has the FIFO-of-capacity-2
  // quotient: 1 + 2 + 4 = 7 states.
  const Program p = buffer_program();
  const Lts l = generate(p, "Buffer");
  const auto r = bisim::minimize(l, bisim::Equivalence::kBranching);
  EXPECT_EQ(r.quotient.num_states(), 7u);
}

TEST(Generate, GeneratedLtsIsFullyReachable) {
  const Program p = buffer_program();
  const Lts l = generate(p, "Buffer");
  EXPECT_EQ(lts::trim(l).removed_states, 0u);
}

}  // namespace
