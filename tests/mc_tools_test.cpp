// Tests for the property parser, diagnostic traces, and weak-trace
// equivalence.
#include <gtest/gtest.h>

#include "bisim/equivalence.hpp"
#include "bisim/trace.hpp"
#include "mc/diagnostic.hpp"
#include "mc/evaluator.hpp"
#include "mc/parser.hpp"
#include "mc/properties.hpp"

namespace {

using namespace multival;
using namespace multival::mc;
using lts::Lts;

// --- parser: action formulas ---------------------------------------------------

TEST(ParserAction, Atoms) {
  EXPECT_TRUE(parse_action_formula("any")->matches("X", false));
  EXPECT_TRUE(parse_action_formula("tau")->matches("i", true));
  EXPECT_FALSE(parse_action_formula("visible")->matches("i", true));
  EXPECT_TRUE(parse_action_formula("'PUSH*'")->matches("PUSH !1", false));
  EXPECT_TRUE(parse_action_formula("\"POP\"")->matches("POP", false));
}

TEST(ParserAction, Combinators) {
  const auto a = parse_action_formula("'A*' & !'A !0'");
  EXPECT_TRUE(a->matches("A !1", false));
  EXPECT_FALSE(a->matches("A !0", false));
  const auto b = parse_action_formula("tau | 'B'");
  EXPECT_TRUE(b->matches("i", true));
  EXPECT_TRUE(b->matches("B", false));
  EXPECT_FALSE(b->matches("C", false));
}

TEST(ParserAction, Parentheses) {
  const auto a = parse_action_formula("!( 'A' | 'B' )");
  EXPECT_FALSE(a->matches("A", false));
  EXPECT_TRUE(a->matches("C", false));
}

TEST(ParserAction, Errors) {
  EXPECT_THROW((void)parse_action_formula(""), ParseError);
  EXPECT_THROW((void)parse_action_formula("'unterminated"), ParseError);
  EXPECT_THROW((void)parse_action_formula("any extra"), ParseError);
}

// --- parser: state formulas -------------------------------------------------------

Lts diamond_lts() {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 2);
  l.add_transition(0, "i", 2);
  return l;
}

TEST(ParserState, Constants) {
  const Lts l = diamond_lts();
  EXPECT_EQ(evaluate(l, parse_formula("tt")).count(), 3u);
  EXPECT_EQ(evaluate(l, parse_formula("ff")).count(), 0u);
}

TEST(ParserState, Modalities) {
  const Lts l = diamond_lts();
  const auto can_a = evaluate(l, parse_formula("<'A'> tt"));
  EXPECT_TRUE(can_a.contains(0));
  EXPECT_FALSE(can_a.contains(1));
  const auto box_b = evaluate(l, parse_formula("['B'] ff"));
  EXPECT_FALSE(box_b.contains(1));
  EXPECT_TRUE(box_b.contains(0));
}

TEST(ParserState, DeadlockFreedomMatchesBuilder) {
  const auto parsed = parse_formula("nu X. (<any> tt && [any] X)");
  Lts live;
  live.add_states(1);
  live.add_transition(0, "A", 0);
  EXPECT_TRUE(check(live, parsed));
  EXPECT_EQ(check(live, parsed), check(live, deadlock_freedom()));
  Lts dead;
  dead.add_states(2);
  dead.add_transition(0, "A", 1);
  EXPECT_FALSE(check(dead, parsed));
}

TEST(ParserState, FixpointsAndPrecedence) {
  // mu X. (<'B'> tt || <any> X) — reachability of B.
  const Lts l = diamond_lts();
  const auto f = parse_formula("mu X. (<'B'> tt || <any> X)");
  const auto sat = evaluate(l, f);
  EXPECT_TRUE(sat.contains(0));
  EXPECT_TRUE(sat.contains(1));
  EXPECT_FALSE(sat.contains(2));
}

TEST(ParserState, NestedFixpoints) {
  // Response: nu X. ([ 'REQ' ] mu Y. (<any> tt && [ !'ACK' ] Y) && [any] X)
  Lts l;
  l.add_states(2);
  l.add_transition(0, "REQ", 1);
  l.add_transition(1, "ACK", 0);
  const auto f = parse_formula(
      "nu X. ([ 'REQ' ] (mu Y. (<any> tt && [ !'ACK' ] Y)) && [any] X)");
  EXPECT_TRUE(check(l, f));
}

TEST(ParserState, Negation) {
  const Lts l = diamond_lts();
  const auto f = parse_formula("!<'A'> tt");
  EXPECT_FALSE(evaluate(l, f).contains(0));
  EXPECT_TRUE(evaluate(l, f).contains(1));
}

TEST(ParserState, RoundTripThroughToString) {
  // to_string output of the canned properties reparses to an equivalent
  // formula.
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 0);
  for (const auto& f : {deadlock_freedom(), can_do(act("B")),
                        inevitable(act("B"))}) {
    const auto reparsed = parse_formula(f->to_string());
    EXPECT_EQ(evaluate(l, f).count(), evaluate(l, reparsed).count())
        << f->to_string();
  }
}

TEST(ParserState, Errors) {
  EXPECT_THROW((void)parse_formula(""), ParseError);
  EXPECT_THROW((void)parse_formula("mu X"), ParseError);
  EXPECT_THROW((void)parse_formula("<any tt"), ParseError);
  EXPECT_THROW((void)parse_formula("tt tt"), ParseError);
  EXPECT_THROW((void)parse_formula("(tt"), ParseError);
}

// --- diagnostics --------------------------------------------------------------------

TEST(Diagnostic, DeadlockTrace) {
  Lts l;
  l.add_states(4);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 2);
  l.add_transition(1, "C", 3);
  l.add_transition(2, "B", 1);  // 3 is the deadlock
  const Trace t = deadlock_trace(l);
  ASSERT_TRUE(t.found);
  EXPECT_EQ(t.final_state, 3u);
  ASSERT_EQ(t.labels.size(), 2u);
  EXPECT_EQ(t.labels[0], "A");
  EXPECT_EQ(t.labels[1], "C");
  EXPECT_EQ(t.to_string(), "A -> C");
}

TEST(Diagnostic, NoDeadlockMeansNoTrace) {
  Lts l;
  l.add_states(1);
  l.add_transition(0, "A", 0);
  const Trace t = deadlock_trace(l);
  EXPECT_FALSE(t.found);
  EXPECT_EQ(t.to_string(), "<none>");
}

TEST(Diagnostic, TraceToAction) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "STEP", 1);
  l.add_transition(1, "BAD !7", 2);
  const Trace t = shortest_trace_to_action(l, act("BAD*"));
  ASSERT_TRUE(t.found);
  ASSERT_EQ(t.labels.size(), 2u);
  EXPECT_EQ(t.labels.back(), "BAD !7");
}

TEST(Diagnostic, TraceToActionPicksShortest) {
  Lts l;
  l.add_states(4);
  l.add_transition(0, "X", 1);
  l.add_transition(1, "HIT", 2);
  l.add_transition(0, "HIT", 3);  // depth-1 witness
  const Trace t = shortest_trace_to_action(l, act("HIT"));
  ASSERT_TRUE(t.found);
  EXPECT_EQ(t.labels.size(), 1u);
}

TEST(Diagnostic, TraceToStateSet) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 2);
  StateSet targets(3);
  targets.insert(2);
  const Trace t = shortest_trace_to(l, targets);
  ASSERT_TRUE(t.found);
  EXPECT_EQ(t.labels.size(), 2u);
  // Initial state in the target set -> empty trace.
  StateSet init_set(3);
  init_set.insert(0);
  const Trace e = shortest_trace_to(l, init_set);
  ASSERT_TRUE(e.found);
  EXPECT_TRUE(e.labels.empty());
  EXPECT_EQ(e.to_string(), "<initial state>");
}

TEST(Diagnostic, UnreachableTarget) {
  Lts l;
  l.add_states(2);  // no transitions
  StateSet targets(2);
  targets.insert(1);
  EXPECT_FALSE(shortest_trace_to(l, targets).found);
}

// --- weak-trace equivalence -------------------------------------------------------------

TEST(TraceEq, DeterminizeRemovesTau) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "i", 1);
  l.add_transition(1, "A", 2);
  const Lts d = bisim::determinize(l);
  EXPECT_EQ(d.num_states(), 2u);
  for (const auto& tr : d.all_transitions()) {
    EXPECT_FALSE(lts::ActionTable::is_tau(tr.action));
  }
}

TEST(TraceEq, NondeterminismCollapsed) {
  // a.b + a.c has the same traces as a.(b+c) — trace equivalent but not
  // branching equivalent.
  Lts split;
  split.add_states(4);
  split.add_transition(0, "a", 1);
  split.add_transition(0, "a", 2);
  split.add_transition(1, "b", 3);
  split.add_transition(2, "c", 3);
  Lts joined;
  joined.add_states(3);
  joined.add_transition(0, "a", 1);
  joined.add_transition(1, "b", 2);
  joined.add_transition(1, "c", 2);
  EXPECT_TRUE(bisim::weak_trace_equivalent(split, joined));
  EXPECT_FALSE(
      bisim::equivalent(split, joined, bisim::Equivalence::kBranching));
}

TEST(TraceEq, DifferentLanguagesDetected) {
  Lts a;
  a.add_states(2);
  a.add_transition(0, "x", 1);
  Lts b;
  b.add_states(2);
  b.add_transition(0, "y", 1);
  EXPECT_FALSE(bisim::weak_trace_equivalent(a, b));
}

TEST(TraceEq, TauOnlyDifferencesIgnored) {
  Lts a;
  a.add_states(3);
  a.add_transition(0, "i", 1);
  a.add_transition(1, "i", 2);
  a.add_transition(2, "GO", 0);
  Lts b;
  b.add_states(1);
  b.add_transition(0, "GO", 0);
  EXPECT_TRUE(bisim::weak_trace_equivalent(a, b));
}

TEST(TraceEq, BranchingImpliesTraceEquivalence) {
  // Sanity: branching-equivalent systems are weak-trace equivalent.
  Lts x;
  x.add_states(2);
  x.add_transition(0, "i", 1);
  x.add_transition(1, "A", 0);
  Lts y;
  y.add_states(1);
  y.add_transition(0, "A", 0);
  ASSERT_TRUE(bisim::equivalent(x, y, bisim::Equivalence::kBranching));
  EXPECT_TRUE(bisim::weak_trace_equivalent(x, y));
}

TEST(TraceEq, StateLimitEnforced) {
  Lts l;
  l.add_states(12);
  // Dense nondeterminism to force subset blow-up past a tiny limit.
  for (lts::StateId s = 0; s < 12; ++s) {
    for (lts::StateId t = 0; t < 12; ++t) {
      if (((s * 7 + t) % 3) == 0) {
        l.add_transition(s, "a", t);
      }
      if (((s * 5 + t) % 4) == 1) {
        l.add_transition(s, "b", t);
      }
    }
  }
  bisim::DeterminizeOptions opts;
  opts.max_states = 3;
  EXPECT_THROW((void)bisim::determinize(l, opts), std::runtime_error);
}

}  // namespace
