// Case-study tests: FAUST-style NoC router and 2x2 mesh.
#include <gtest/gtest.h>

#include <algorithm>

#include "bisim/equivalence.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "noc/mesh.hpp"
#include "noc/perf.hpp"
#include "noc/router.hpp"

namespace {

using namespace multival;
using namespace multival::noc;

// --- single router ------------------------------------------------------------

TEST(Router, FreeRunningRouterIsDeadlockFree) {
  for (int node = 0; node < 4; ++node) {
    const lts::Lts l = router_lts(node);
    EXPECT_TRUE(mc::check(l, mc::deadlock_freedom())) << "router " << node;
    EXPECT_GT(l.num_states(), 10u);
  }
}

TEST(Router, LocalTrafficIsDeliveredLocally) {
  // A packet for the router's own node can reach the local output.
  const lts::Lts l = router_lts(0);
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("LO0 !0"))));
  // A packet for node 1 (x differs) leaves east, never through LO.
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("EO0 !1"))));
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("LO0 !1"))));
}

TEST(Router, XyOrderForbidsYToXTurn) {
  // The south input (Y traffic) only accepts destinations whose X leg is
  // done: at router 0 (x=0) that is column-0 traffic going north, i.e.
  // only the local node.
  const lts::Lts l = router_lts(0);
  for (int d = 1; d < 4; ++d) {
    EXPECT_TRUE(mc::check(
        l, mc::never(mc::act("SI0 !" + std::to_string(d)))))
        << "dest " << d;
  }
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("SI0 !0"))));
}

TEST(Router, EastInputOnlyAcceptsMatchingOrWestwardColumns) {
  const lts::Lts l = router_lts(0);  // x = 0: from east only dests with x=0
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("EI0 !0"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("EI0 !2"))));
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("EI0 !1"))));
}

TEST(Router, CentreRouterOf3x3HasAllPorts) {
  const MeshDims dims{3, 3};
  const lts::Lts l = router_lts(4, dims);  // centre node
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
  // All four directions plus local are live.
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("EO4 !5"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("WO4 !3"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("NO4 !1"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("SO4 !7"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("LO4 !4"))));
  // XY: a corner destination in another column leaves on X first.
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("NO4 !0"))));
}

TEST(Router, BadNodeRejected) {
  EXPECT_THROW((void)router_lts(7), std::invalid_argument);
  EXPECT_THROW((void)router_lts(0, MeshDims{5, 5}), std::invalid_argument);
}

// --- mesh: functional ---------------------------------------------------------------

TEST(Mesh, SinglePacketAlwaysDelivered) {
  // Every (src, dst) pair: the packet is inevitably delivered at dst.
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      const lts::Lts l = single_packet_lts(src, dst);
      EXPECT_TRUE(mc::check(
          l, mc::inevitable(mc::act("LO" + std::to_string(dst) + " *"))))
          << src << " -> " << dst;
    }
  }
}

TEST(Mesh, SinglePacketNeverMisdelivered) {
  for (int dst = 0; dst < 4; ++dst) {
    const lts::Lts l = single_packet_lts(0, dst);
    for (int other = 0; other < 4; ++other) {
      if (other == dst) {
        continue;
      }
      EXPECT_TRUE(mc::check(
          l, mc::never(mc::act("LO" + std::to_string(other) + " *"))))
          << "dst " << dst << " other " << other;
    }
  }
}

TEST(Mesh, SinglePacketScenarioTerminates) {
  // The scenario ends in exactly one (terminated) state; no livelock.
  const lts::Lts l = single_packet_lts(0, 3);
  EXPECT_FALSE(lts::has_tau_cycle(l));
  EXPECT_EQ(lts::deadlock_states(l).size(), 1u);  // the terminal state
}

TEST(Mesh, SinglePacketReducesToDeliverySequence) {
  // Hiding links, the observable behaviour is inject;deliver — a 3-state
  // sequence modulo branching bisimulation.
  const lts::Lts l = single_packet_lts(0, 3);
  const auto r = bisim::minimize(l, bisim::Equivalence::kBranching);
  EXPECT_EQ(r.quotient.num_states(), 3u);
  EXPECT_EQ(r.quotient.num_transitions(), 2u);
}

TEST(Mesh, CrossTrafficStaysLive) {
  // Two independent flows: no deadlock, both keep delivering.
  const std::vector<Flow> flows{{0, 3}, {3, 0}};
  const lts::Lts l = stream_lts(flows);
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("LO3 *"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("LO0 *"))));
}

TEST(Mesh, ContendingFlowsStayLive) {
  // Flows 0->3 and 1->3 share the Y link into node 3 and the LO3 port.
  const std::vector<Flow> flows{{0, 3}, {1, 3}};
  const lts::Lts l = stream_lts(flows);
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
}

TEST(Mesh, LinkGateInventory) {
  EXPECT_EQ(mesh_link_gates().size(), 8u);
  EXPECT_EQ(mesh_link_gates(MeshDims{3, 2}).size(), 14u);
  EXPECT_EQ(mesh_link_gates(MeshDims{3, 3}).size(), 24u);
  EXPECT_THROW((void)single_packet_lts(0, 9), std::invalid_argument);
  EXPECT_THROW((void)stream_lts({}), std::invalid_argument);
}

// --- mesh: performance ------------------------------------------------------------------

TEST(NocPerf, MoreHopsMoreLatency) {
  const NocRates rates;
  const double zero_hop = packet_latency(0, 0, rates);   // local only
  const double one_hop = packet_latency(0, 1, rates);    // X
  const double two_hops = packet_latency(0, 3, rates);   // X then Y
  EXPECT_LT(zero_hop, one_hop);
  EXPECT_LT(one_hop, two_hops);
}

TEST(NocPerf, LatencyScalesWithLinkRate) {
  NocRates slow;
  slow.link_rate = 1.0;
  NocRates fast;
  fast.link_rate = 10.0;
  EXPECT_GT(packet_latency(0, 3, slow), packet_latency(0, 3, fast));
}

TEST(NocPerf, ContentionDegradesPerFlowThroughput) {
  const NocRates rates;
  const double solo_a = delivery_throughput({{0, 3}}, rates);
  const double solo_b = delivery_throughput({{1, 3}}, rates);
  const double contended = delivery_throughput({{0, 3}, {1, 3}}, rates);
  // Sharing the Y link into node 3 and the LO3 port costs throughput: the
  // combined rate stays below the sum of the isolated rates.
  EXPECT_GT(contended, std::max(solo_a, solo_b));
  EXPECT_LT(contended, solo_a + solo_b);
}

TEST(NocPerf, DisjointFlowsScaleAlmostLinearly) {
  const NocRates rates;
  const double solo = delivery_throughput({{0, 1}}, rates);
  const double dual = delivery_throughput({{0, 1}, {2, 3}}, rates);
  EXPECT_GT(dual, 1.8 * solo);
}

// --- buffer depth --------------------------------------------------------------

TEST(BufferDepth, Validated) {
  MeshDims dims;
  dims.buffer_depth = 0;
  EXPECT_THROW((void)router_lts(0, dims), std::invalid_argument);
  dims.buffer_depth = 4;
  EXPECT_THROW((void)router_lts(0, dims), std::invalid_argument);
}

TEST(BufferDepth, DeeperBuffersEnlargeStateSpace) {
  MeshDims deep;
  deep.buffer_depth = 2;
  EXPECT_GT(router_lts(0, deep).num_states(), router_lts(0).num_states());
}

TEST(BufferDepth, FunctionalBehaviourUnchangedForOnePacket) {
  // With a single packet in flight the buffer depth is unobservable.
  MeshDims deep;
  deep.buffer_depth = 2;
  const lts::Lts shallow = single_packet_lts(0, 3);
  const lts::Lts buffered = single_packet_lts(0, 3, true, deep);
  EXPECT_TRUE(bisim::equivalent(shallow, buffered,
                                bisim::Equivalence::kBranching));
}

TEST(BufferDepth, DeeperBuffersHelpPipelinedTraffic) {
  // Two closed-loop flows on the same path keep more packets in flight;
  // deeper input buffers reduce head-of-line blocking.
  MeshDims deep;
  deep.buffer_depth = 2;
  const NocRates rates;
  const std::vector<Flow> flows{{0, 3}, {0, 3}};
  const double shallow = delivery_throughput(flows, rates);
  const double buffered = delivery_throughput(flows, rates, deep);
  EXPECT_GE(buffered, shallow - 1e-9);
}

// --- larger meshes -----------------------------------------------------------

TEST(Mesh3x3, SinglePacketDeliveredAcrossDiagonal) {
  const MeshDims dims{3, 3};
  const lts::Lts l = single_packet_lts(0, 8, /*hide_links=*/true, dims);
  EXPECT_TRUE(mc::check(l, mc::inevitable(mc::act("LO8 *"))));
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("LO4 *"))));
}

TEST(Mesh3x3, LatencyGrowsWithManhattanDistance) {
  const MeshDims dims{3, 3};
  const NocRates rates;
  const double d1 = packet_latency(0, 1, rates, dims);  // 1 hop
  const double d2 = packet_latency(0, 2, rates, dims);  // 2 hops
  const double d4 = packet_latency(0, 8, rates, dims);  // 4 hops
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d4);
}

TEST(Mesh3x2, CrossTrafficLive) {
  const MeshDims dims{3, 2};
  const std::vector<Flow> flows{{0, 5}, {5, 0}};
  const lts::Lts l = stream_lts(flows, /*hide_links=*/true, dims);
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
}

}  // namespace
