// Tests for the src/dse subsystem: sweep-spec parsing, deterministic grid
// expansion with constraint pruning, Pareto non-dominated sorting, and the
// end-to-end orchestrator (gate -> serve -> metrics -> fronts), including
// the determinism contract: identical JSON across worker counts.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dse/driver.hpp"
#include "dse/grid.hpp"
#include "dse/pareto.hpp"
#include "dse/scenario.hpp"

namespace {

using namespace multival;

// --- grid: parsing -------------------------------------------------------

TEST(DseGrid, ParsesSpacesAxesAndConstraints) {
  const dse::SweepSpec spec = dse::parse_sweep_spec(
      "# comment\n"
      "sweep demo\n"
      "objective latency min\n"
      "objective states min\n"
      "space noc\n"
      "  axis width = 2, 3\n"
      "  axis height = 2\n"
      "  constraint nodes <= 6\n"
      "end\n");
  EXPECT_EQ(spec.name, "demo");
  ASSERT_EQ(spec.spaces.size(), 1u);
  EXPECT_EQ(spec.spaces[0].family, "noc");
  ASSERT_EQ(spec.spaces[0].axes.size(), 2u);
  EXPECT_EQ(spec.spaces[0].axes[0].name, "width");
  EXPECT_EQ(spec.spaces[0].axes[0].values.size(), 2u);
  ASSERT_EQ(spec.spaces[0].constraints.size(), 1u);
  EXPECT_EQ(spec.spaces[0].constraints[0].name, "nodes");
  ASSERT_EQ(spec.objectives.size(), 2u);
  EXPECT_EQ(spec.objectives[0].first, "latency");
  EXPECT_FALSE(spec.objectives[0].second);
  EXPECT_EQ(spec.spaces[0].raw_size(), 2u);
}

TEST(DseGrid, ParseErrorsCarryLineNumbers) {
  try {
    (void)dse::parse_sweep_spec("sweep x\nspace noc\n  axis = 1\nend\n");
    FAIL() << "expected SpecError";
  } catch (const dse::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)dse::parse_sweep_spec("axis w = 1\n"), dse::SpecError);
  EXPECT_THROW((void)dse::parse_sweep_spec("space noc\n"), dse::SpecError);
  EXPECT_THROW(
      (void)dse::parse_sweep_spec("space noc\naxis w = 1, 1\nend\n"),
      dse::SpecError);
  EXPECT_THROW(
      (void)dse::parse_sweep_spec("space noc\nconstraint w ~ 3\nend\n"),
      dse::SpecError);
}

TEST(DseGrid, AxisValuesKeepTheirType) {
  EXPECT_TRUE(std::holds_alternative<long>(dse::parse_axis_value("2")));
  EXPECT_TRUE(std::holds_alternative<double>(dse::parse_axis_value("2.0")));
  EXPECT_TRUE(
      std::holds_alternative<std::string>(dse::parse_axis_value("mesi")));
  EXPECT_EQ(dse::to_string(dse::parse_axis_value("2")), "2");
  EXPECT_EQ(dse::to_string(dse::parse_axis_value("mesi")), "mesi");
}

TEST(DseGrid, OutOfRangeNumericAxisValueIsRejectedNotDemotedToWord) {
  // "1e999" parses as a number but overflows double; it must be rejected,
  // not silently enumerated as a *string* axis value.
  EXPECT_THROW((void)dse::parse_axis_value("1e999"), dse::SpecError);
  try {
    (void)dse::parse_sweep_spec(
        "space noc\n"
        "  axis width = 2, 1e999\n"
        "end\n");
    FAIL() << "expected SpecError";
  } catch (const dse::SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

// --- grid: expansion -----------------------------------------------------

TEST(DseGrid, ExpansionOrderIsLastAxisFastest) {
  const dse::SweepSpec spec = dse::parse_sweep_spec(
      "space xstream\n"
      "  axis capacity = 1, 2\n"
      "  axis items = 1, 2\n"
      "end\n");
  const std::vector<dse::Point> pts =
      dse::expand(spec, dse::derived_quantities);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].id, "xstream/capacity=1,items=1");
  EXPECT_EQ(pts[1].id, "xstream/capacity=1,items=2");
  EXPECT_EQ(pts[2].id, "xstream/capacity=2,items=1");
  EXPECT_EQ(pts[3].id, "xstream/capacity=2,items=2");
  EXPECT_EQ(pts[0].get_long("capacity", -1), 1);
  EXPECT_EQ(pts[3].get_long("items", -1), 2);
}

TEST(DseGrid, ConstraintsPruneOnAxesAndDerivedQuantities) {
  const dse::SweepSpec spec = dse::parse_sweep_spec(
      "space noc\n"
      "  axis width = 2, 3\n"
      "  axis height = 2, 3\n"
      "  constraint nodes <= 6\n"  // derived: width * height
      "end\n");
  std::size_t pruned = 0;
  const std::vector<dse::Point> pts =
      dse::expand(spec, dse::derived_quantities, &pruned);
  EXPECT_EQ(pts.size(), 3u);  // 3x3 = 9 nodes is pruned
  EXPECT_EQ(pruned, 1u);
  for (const dse::Point& p : pts) {
    EXPECT_LE(p.get_long("width", 0) * p.get_long("height", 0), 6);
  }
}

TEST(DseGrid, PredictedStatesConstraintPrunesBeforeInstantiation) {
  // "predicted_states" is the static bound of the point's gate model
  // (analyze/bounds — no state is ever generated): capacity-4 builtin
  // fabrics predict more queue states than capacity-1 ones, so a tight
  // budget prunes the expensive corners of the grid up front.
  const dse::SweepSpec open_spec = dse::parse_sweep_spec(
      "space xmas\n"
      "  axis fabric = vc-pair\n"
      "  axis capacity = 1, 4\n"
      "end\n");
  const std::vector<dse::Point> all =
      dse::expand(open_spec, dse::derived_quantities);
  ASSERT_EQ(all.size(), 2u);
  const auto predicted = [](const dse::Point& p) {
    return std::get<long>(
        dse::derived_quantities(p.family, p.axes).at("predicted_states"));
  };
  const long small = predicted(all[0]);
  const long big = predicted(all[1]);
  ASSERT_GT(small, 0);
  ASSERT_GT(big, small);

  const dse::SweepSpec capped = dse::parse_sweep_spec(
      "space xmas\n"
      "  axis fabric = vc-pair\n"
      "  axis capacity = 1, 4\n"
      "  constraint predicted_states <= " + std::to_string(small) + "\n"
      "end\n");
  std::size_t pruned = 0;
  const std::vector<dse::Point> kept =
      dse::expand(capped, dse::derived_quantities, &pruned);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(pruned, 1u);
  EXPECT_EQ(kept[0].get_long("capacity", -1), 1);
}

TEST(DseGrid, WordConstraintsUseStringEquality) {
  const dse::SweepSpec spec = dse::parse_sweep_spec(
      "space fame\n"
      "  axis protocol = msi, mesi\n"
      "  constraint protocol != msi\n"
      "end\n");
  const std::vector<dse::Point> pts =
      dse::expand(spec, dse::derived_quantities);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].get_word("protocol", ""), "mesi");
}

TEST(DseGrid, BuiltinSweepsExpandToTheDocumentedSizes) {
  std::size_t pruned = 0;
  const std::vector<dse::Point> d = dse::expand(
      dse::parse_sweep_spec(dse::builtin_sweep_spec("default")),
      dse::derived_quantities, &pruned);
  EXPECT_EQ(d.size(), 54u);
  EXPECT_EQ(pruned, 4u);
  EXPECT_GE(d.size(), 24u);  // the EXPERIMENTS.md D1 floor

  const std::vector<dse::Point> s = dse::expand(
      dse::parse_sweep_spec(dse::builtin_sweep_spec("smoke")),
      dse::derived_quantities);
  EXPECT_LE(s.size(), 8u);
  EXPECT_THROW((void)dse::builtin_sweep_spec("no-such-sweep"),
               dse::SpecError);
}

// --- scenario ------------------------------------------------------------

TEST(DseScenario, UnknownAxisNamesTheKnownOnes) {
  dse::Point p;
  p.family = "noc";
  p.id = "noc/typo=1";
  p.axes["buffr"] = 1L;
  p.axis_order = {"buffr"};
  try {
    (void)dse::instantiate(p);
    FAIL() << "expected SpecError";
  } catch (const dse::SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("buffr"), std::string::npos) << msg;
    EXPECT_NE(msg.find("buffer"), std::string::npos) << msg;  // the hint
  }
}

TEST(DseScenario, OutOfRangeAxisValueIsRejected) {
  dse::Point p;
  p.family = "noc";
  p.id = "noc/width=9";
  p.axes["width"] = 9L;
  p.axis_order = {"width"};
  EXPECT_THROW((void)dse::instantiate(p), dse::SpecError);
}

TEST(DseScenario, ResponseBodiesParse) {
  const auto [lo, hi] =
      dse::parse_time_bounds("reach in [1, 1]; time in [0.25, 0.75]");
  EXPECT_DOUBLE_EQ(lo, 0.25);
  EXPECT_DOUBLE_EQ(hi, 0.75);
  EXPECT_DOUBLE_EQ(dse::parse_throughput("throughput(POP*) = 1.5"), 1.5);
  EXPECT_THROW((void)dse::parse_time_bounds("gibberish"), std::runtime_error);
}

// --- pareto --------------------------------------------------------------

dse::Metrics make_metrics(double latency, double throughput,
                          std::size_t states) {
  dse::Metrics m;
  m.latency = latency;
  m.latency_width = 0.0;
  m.throughput = throughput;
  m.occupancy = latency * throughput;
  m.states = states;
  return m;
}

TEST(DsePareto, DominationNeedsNoWorseEverywhereStrictlyBetterSomewhere) {
  const std::vector<dse::Objective> obj = {{"latency", false},
                                           {"throughput", true}};
  const dse::Metrics fast = make_metrics(1.0, 2.0, 10);
  const dse::Metrics slow = make_metrics(2.0, 2.0, 10);
  const dse::Metrics tradeoff = make_metrics(0.5, 1.0, 10);
  EXPECT_TRUE(dse::dominates(fast, slow, obj));
  EXPECT_FALSE(dse::dominates(slow, fast, obj));
  EXPECT_FALSE(dse::dominates(fast, fast, obj));  // equal: not strict
  // fast vs tradeoff: each wins one objective -> incomparable.
  EXPECT_FALSE(dse::dominates(fast, tradeoff, obj));
  EXPECT_FALSE(dse::dominates(tradeoff, fast, obj));
}

TEST(DsePareto, NonDominatedSortPeelsFronts) {
  const std::vector<dse::Objective> obj = {{"latency", false},
                                           {"throughput", true}};
  const std::vector<dse::Metrics> pts = {
      make_metrics(1.0, 2.0, 1),  // front 0
      make_metrics(2.0, 3.0, 1),  // front 0 (trade-off with the first)
      make_metrics(2.0, 2.0, 1),  // dominated by both -> front 1
      make_metrics(3.0, 1.0, 1),  // dominated by everything -> front 2
  };
  const std::vector<int> ranks = dse::pareto_ranks(pts, obj);
  EXPECT_EQ(ranks, (std::vector<int>{0, 0, 1, 2}));
}

TEST(DsePareto, ObjectiveOverridesValidate) {
  const std::vector<dse::Objective> defaults = dse::resolve_objectives({});
  ASSERT_EQ(defaults.size(), 4u);
  EXPECT_EQ(defaults[0].metric, "latency");
  const std::vector<dse::Objective> one =
      dse::resolve_objectives({{"states", false}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_THROW((void)dse::resolve_objectives({{"goodness", true}}),
               dse::SpecError);
  EXPECT_THROW(
      (void)dse::resolve_objectives({{"states", false}, {"states", true}}),
      dse::SpecError);
}

// --- driver (end to end, in-process service) -----------------------------

TEST(DseDriver, SmokeSweepEvaluatesEveryPointAndSolvesDistinctKeysOnce) {
  const dse::SweepSpec spec =
      dse::parse_sweep_spec(dse::builtin_sweep_spec("smoke"));
  dse::DriverOptions opts;
  opts.workers = 2;
  const dse::SweepResult r = dse::run_sweep(spec, opts);

  EXPECT_TRUE(r.all_ok());
  EXPECT_FALSE(r.points.empty());
  EXPECT_FALSE(r.front.empty());  // dominance is strict: never empty
  for (const dse::PointResult& p : r.points) {
    EXPECT_EQ(p.status, "ok") << p.point.id;
    EXPECT_GE(p.rank, 0) << p.point.id;
    EXPECT_GT(p.metrics.latency, 0.0) << p.point.id;
    EXPECT_GT(p.metrics.states, 0u) << p.point.id;
    for (const dse::ProbeResult& probe : p.probes) {
      EXPECT_EQ(probe.key.size(), 32u);  // 128-bit hex
      EXPECT_EQ(probe.status, serve::Status::kOk) << p.point.id;
    }
  }

  // The acceptance property: one solve per distinct content hash, all
  // duplicates served by the coalescer/cache, nothing shed.
  ASSERT_TRUE(r.have_service_metrics);
  EXPECT_EQ(r.service.solves, r.distinct_keys);
  EXPECT_EQ(r.service.shed, 0u);
  EXPECT_EQ(r.service.timed_out, 0u);
  EXPECT_EQ(r.service.invalid, 0u);
  // Every distinct probe reaches a numerical solver at least once (a bounds
  // probe logs one SolveStat per inner solve, so >= rather than ==).
  EXPECT_GE(r.solver.solves, r.distinct_keys);
}

TEST(DseDriver, DuplicateProbesAreFlaggedDeterministically) {
  const dse::SweepSpec spec =
      dse::parse_sweep_spec(dse::builtin_sweep_spec("default"));
  const dse::SweepResult r = dse::run_sweep(spec);
  std::set<std::string> seen;
  std::size_t duplicates = 0;
  for (const dse::PointResult& p : r.points) {
    for (const dse::ProbeResult& probe : p.probes) {
      const bool first = seen.insert(probe.key).second;
      EXPECT_EQ(probe.duplicate, !first) << p.point.id << "/" << probe.name;
      duplicates += probe.duplicate ? 1 : 0;
    }
  }
  EXPECT_EQ(seen.size(), r.distinct_keys);
  EXPECT_GT(duplicates, 0u);  // the default sweep shares sub-models
  EXPECT_EQ(seen.size() + duplicates, r.probes_submitted);
}

TEST(DseDriver, JsonIsByteIdenticalAcrossWorkerCounts) {
  const dse::SweepSpec spec =
      dse::parse_sweep_spec(dse::builtin_sweep_spec("smoke"));
  dse::DriverOptions one;
  one.workers = 1;
  dse::DriverOptions four;
  four.workers = 4;
  const std::string a = dse::to_json(dse::run_sweep(spec, one), false);
  const std::string b = dse::to_json(dse::run_sweep(spec, four), false);
  EXPECT_EQ(a, b);
  // Timing off really drops the scheduling-dependent fields.
  EXPECT_EQ(a.find("_ms"), std::string::npos);
}

TEST(DseDriver, CsvListsEveryPointInExpansionOrder) {
  const dse::SweepSpec spec =
      dse::parse_sweep_spec(dse::builtin_sweep_spec("smoke"));
  const dse::SweepResult r = dse::run_sweep(spec);
  const std::string csv = dse::to_csv(r);
  std::size_t lines = 0;
  for (const char c : csv) {
    lines += (c == '\n') ? 1 : 0;
  }
  EXPECT_EQ(lines, r.points.size() + 1);  // header + one row per point
  EXPECT_EQ(csv.find("id,family,status,rank"), 0u);
}

TEST(DseDriver, UnknownFamilyInSpecThrowsBeforeEvaluation) {
  const dse::SweepSpec spec = dse::parse_sweep_spec(
      "space quantum\n  axis qubits = 2\nend\n");
  EXPECT_THROW((void)dse::run_sweep(spec), dse::SpecError);
}

}  // namespace
