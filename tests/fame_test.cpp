// Case-study tests: FAME2 CC-NUMA coherence, topologies and the MPI layer.
#include <gtest/gtest.h>

#include <cmath>

#include "fame/coherence.hpp"
#include "fame/mpi.hpp"
#include "fame/topology.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"

namespace {

using namespace multival;
using namespace multival::fame;

// --- coherence protocol: functional verification ---------------------------------

TEST(Coherence, MsiSystemIsCoherent) {
  const lts::Lts l = coherence_system_lts(Protocol::kMsi);
  EXPECT_GT(l.num_states(), 20u);
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("ERR*"))));
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
}

TEST(Coherence, MesiSystemIsCoherent) {
  const lts::Lts l = coherence_system_lts(Protocol::kMesi);
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("ERR*"))));
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
}

TEST(Coherence, MesiGrantsExclusive) {
  // MESI can grant state 3 (Exclusive); MSI never does.
  const lts::Lts mesi = coherence_system_lts(Protocol::kMesi);
  EXPECT_TRUE(mc::check(mesi, mc::can_do(mc::act("GRS* !3"))));
  const lts::Lts msi = coherence_system_lts(Protocol::kMsi);
  EXPECT_TRUE(mc::check(msi, mc::never(mc::act("GRS* !3"))));
}

TEST(Coherence, WritesRequireInvalidation) {
  // Whenever both caches share the line, a write by node 0 triggers INV1
  // before the grant: GRM0 is never immediately possible while node 1
  // shares.  We check the action-level consequence: an RQM0 issued from a
  // shared state is followed by INV1 before GRM0_M.  (Weaker trace check:
  // GRM0 can only happen, and INV1 does happen.)
  const lts::Lts l = coherence_system_lts(Protocol::kMsi);
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("INV1_M"))));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("GRM0_M"))));
}

TEST(Coherence, OperationsCanAlwaysComplete) {
  // After a read/write request the completion stays reachable in every
  // future (no wedging).  Plain inevitability does not hold in the free
  // interleaving semantics — the other node can be scheduled forever — so
  // this is the standard fairness-free formulation.
  const lts::Lts l = coherence_system_lts(Protocol::kMsi);
  EXPECT_TRUE(mc::check(
      l, mc::always(mc::box(mc::act("RD0_M"),
                            mc::can_do(mc::act("RDD0_M"))))));
  EXPECT_TRUE(mc::check(
      l, mc::always(mc::box(mc::act("WR1_M"),
                            mc::can_do(mc::act("WRD1_M"))))));
}

TEST(Coherence, FlushReturnsLineToDirectory) {
  const lts::Lts l = coherence_system_lts(Protocol::kMesi);
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("EV0_M"))));
  EXPECT_TRUE(mc::check(
      l, mc::always(mc::box(mc::act("FL0_M"),
                            mc::can_do(mc::act("FLD0_M"))))));
}

TEST(Coherence, ProtocolNames) {
  EXPECT_STREQ(to_string(Protocol::kMsi), "MSI");
  EXPECT_STREQ(to_string(Protocol::kMesi), "MESI");
  EXPECT_STREQ(to_string(MpiImpl::kEager), "eager");
  EXPECT_STREQ(to_string(MpiImpl::kRendezvous), "rendezvous");
  EXPECT_STREQ(to_string(Topology::kBus), "bus");
  EXPECT_STREQ(to_string(Topology::kRing), "ring");
  EXPECT_STREQ(to_string(Topology::kCrossbar), "crossbar");
}

// --- topology rate tables ------------------------------------------------------------

TEST(TopologyRates, OrderingAndCoverage) {
  const std::vector<std::string> lines{"M"};
  const auto bus = topology_rates(Topology::kBus, lines);
  const auto ring = topology_rates(Topology::kRing, lines);
  const auto xbar = topology_rates(Topology::kCrossbar, lines);
  const std::string rqs = line_gate("RQS", 0, "M");
  EXPECT_LT(bus.at(rqs), ring.at(rqs));
  EXPECT_LT(ring.at(rqs), xbar.at(rqs));
  // All transaction and operation gates must be covered.
  for (const auto& g : transaction_gates("M")) {
    EXPECT_TRUE(bus.count(g)) << g;
  }
  for (const auto& g : operation_gates("M")) {
    EXPECT_TRUE(bus.count(g)) << g;
  }
  EXPECT_THROW((void)topology_rates(Topology::kBus, lines, 0.0),
               std::invalid_argument);
}

// --- MPI ping-pong ----------------------------------------------------------------------

TEST(Mpi, PingPongScenarioTerminates) {
  PingPongConfig cfg;
  cfg.rounds = 1;
  const lts::Lts l = pingpong_lts(cfg);
  EXPECT_EQ(lts::deadlock_states(l).size(), 1u);
  EXPECT_FALSE(lts::has_tau_cycle(l));
}

TEST(Mpi, RoundsValidated) {
  PingPongConfig cfg;
  cfg.rounds = 0;
  EXPECT_THROW((void)pingpong_lts(cfg), std::invalid_argument);
}

TEST(Mpi, LatencyIsFiniteAndPositive) {
  PingPongConfig cfg;
  const PingPongResult r = pingpong_latency(cfg);
  EXPECT_GT(r.round_latency, 0.0);
  EXPECT_TRUE(std::isfinite(r.round_latency));
  EXPECT_GT(r.ctmc_states, 2u);
}

TEST(Mpi, RendezvousSlowerThanEager) {
  PingPongConfig eager;
  eager.impl = MpiImpl::kEager;
  PingPongConfig rdv = eager;
  rdv.impl = MpiImpl::kRendezvous;
  EXPECT_GT(pingpong_latency(rdv).round_latency,
            pingpong_latency(eager).round_latency);
}

TEST(Mpi, TopologyOrdering) {
  PingPongConfig cfg;
  cfg.topology = Topology::kBus;
  const double bus = pingpong_latency(cfg).round_latency;
  cfg.topology = Topology::kRing;
  const double ring = pingpong_latency(cfg).round_latency;
  cfg.topology = Topology::kCrossbar;
  const double xbar = pingpong_latency(cfg).round_latency;
  EXPECT_GT(bus, ring);
  EXPECT_GT(ring, xbar);
}

TEST(Mpi, MesiBeatsMsiOnBufferRecycling) {
  // The receive-side unpack (flush + cold read + write of a private line)
  // costs MSI an extra upgrade transaction that MESI's E state avoids.
  PingPongConfig msi;
  msi.protocol = Protocol::kMsi;
  PingPongConfig mesi = msi;
  mesi.protocol = Protocol::kMesi;
  EXPECT_GT(pingpong_latency(msi).round_latency,
            pingpong_latency(mesi).round_latency);
}

TEST(Mpi, LatencyScalesInverselyWithBaseRate) {
  PingPongConfig slow;
  slow.base_rate = 1.0;
  PingPongConfig fast = slow;
  fast.base_rate = 2.0;
  const double ls = pingpong_latency(slow).round_latency;
  const double lf = pingpong_latency(fast).round_latency;
  EXPECT_NEAR(ls / lf, 2.0, 1e-6);
}

TEST(Mpi, PerRoundLatencyConverges) {
  // T(n)/n = L_inf + c/n: the cold-start difference amortises away, so the
  // per-round latencies at n=8 and n=12 are already close.
  PingPongConfig eight;
  eight.rounds = 8;
  PingPongConfig twelve = eight;
  twelve.rounds = 12;
  const double l8 = pingpong_latency(eight).round_latency;
  const double l12 = pingpong_latency(twelve).round_latency;
  EXPECT_NEAR(l8, l12, 0.05 * l8);
}

}  // namespace
