// Golden-value regression tests: pins the concrete numbers documented in
// EXPERIMENTS.md so the recorded results stay reproducible.  If a change
// legitimately moves one of these values, update EXPERIMENTS.md together
// with the expectation here.
#include <gtest/gtest.h>

#include "bisim/equivalence.hpp"
#include "compose/plan.hpp"
#include "fame/coherence.hpp"
#include "imc/scheduler.hpp"
#include "fame/mpi.hpp"
#include "noc/mesh.hpp"
#include "noc/perf.hpp"
#include "noc/router.hpp"
#include "phase/fit.hpp"
#include "xstream/perf.hpp"
#include "xstream/queue_model.hpp"

namespace {

using namespace multival;

// --- T1: state-space sizes -----------------------------------------------------

TEST(Golden, T1StateSpaces) {
  xstream::QueueConfig q;
  q.capacity = 2;
  EXPECT_EQ(xstream::virtual_queue_lts(q).num_states(), 33u);
  q.capacity = 3;
  EXPECT_EQ(xstream::virtual_queue_lts(q).num_states(), 78u);
  EXPECT_EQ(noc::router_lts(0).num_states(), 360u);
  // The T1 number documents *monolithic* generation; the default pipeline
  // is now the planned compositional one, which returns the canonical
  // divbranching-minimal LTS.
  EXPECT_EQ(noc::single_packet_lts(0, 3, /*hide_links=*/true, {},
                                   compose::Strategy::kFlat)
                .num_states(),
            8u);
  EXPECT_EQ(noc::single_packet_lts(0, 3).num_states(), 3u);
  EXPECT_EQ(fame::coherence_system_lts(fame::Protocol::kMsi).num_states(),
            332u);
  EXPECT_EQ(fame::coherence_system_lts(fame::Protocol::kMesi).num_states(),
            484u);
}

// --- T2: minimisation sizes --------------------------------------------------------

TEST(Golden, T2Minimisation) {
  xstream::QueueConfig q;
  q.capacity = 3;
  const auto queue = xstream::virtual_queue_lts(q);
  EXPECT_EQ(bisim::minimize(queue, bisim::Equivalence::kBranching)
                .quotient.num_states(),
            31u);
  const auto mesi = fame::coherence_system_lts(fame::Protocol::kMesi);
  EXPECT_EQ(bisim::minimize(mesi, bisim::Equivalence::kStrong)
                .quotient.num_states(),
            140u);
  const auto flows = noc::stream_lts({{0, 3}, {1, 3}}, /*hide_links=*/true,
                                     {}, compose::Strategy::kFlat);
  EXPECT_EQ(bisim::minimize(flows, bisim::Equivalence::kBranching)
                .quotient.num_states(),
            4u);
}

// --- F4: occupancy distribution at rho = 0.3 -----------------------------------------

TEST(Golden, F4OccupancyLowLoad) {
  xstream::QueuePerfParams p;
  p.push_rate = 0.3 * 2.0;
  p.pop_rate = 2.0;
  const auto r = xstream::analyze_virtual_queue(p);
  EXPECT_NEAR(r.occupancy_distribution[0], 0.6776, 5e-4);
  EXPECT_NEAR(r.occupancy_distribution[3], 0.0139, 5e-4);
  EXPECT_NEAR(r.mean_occupancy, 0.4111, 5e-4);
}

// --- T6: MPI latencies on the bus -------------------------------------------------------

TEST(Golden, T6BusLatencies) {
  fame::PingPongConfig cfg;
  cfg.topology = fame::Topology::kBus;
  cfg.rounds = 4;
  cfg.protocol = fame::Protocol::kMsi;
  cfg.impl = fame::MpiImpl::kEager;
  EXPECT_NEAR(fame::pingpong_latency(cfg).round_latency, 22.25, 1e-6);
  cfg.protocol = fame::Protocol::kMesi;
  EXPECT_NEAR(fame::pingpong_latency(cfg).round_latency, 18.25, 1e-6);
  cfg.protocol = fame::Protocol::kMsi;
  cfg.impl = fame::MpiImpl::kRendezvous;
  EXPECT_NEAR(fame::pingpong_latency(cfg).round_latency, 47.05, 1e-6);
}

TEST(Golden, T6CrossbarEagerMsi) {
  fame::PingPongConfig cfg;
  cfg.topology = fame::Topology::kCrossbar;
  cfg.rounds = 4;
  EXPECT_NEAR(fame::pingpong_latency(cfg).round_latency, 8.0833, 1e-4);
}

// --- F7: phase-type fit ---------------------------------------------------------------------

TEST(Golden, F7ErlangFit) {
  const auto f16 = phase::evaluate_fixed_delay_fit(1.0, 16, 400);
  EXPECT_NEAR(f16.cv2, 0.0625, 1e-12);
  EXPECT_NEAR(f16.wasserstein, 0.1983, 2e-3);
  EXPECT_NEAR(f16.kolmogorov, 0.5333, 2e-3);
}

// --- F7c: NoC with fixed link delays ----------------------------------------------------------

TEST(Golden, F7cNocLatencyInvariant) {
  const noc::NocRates rates;
  // Exponential links (k=1): mean latency of the 2-hop path with
  // inject/eject at 4.0 and links at 2.0 is 1/4 + 1/2 + 1/2 + 1/4 = 1.5.
  EXPECT_NEAR(noc::packet_latency(0, 3, rates), 1.5, 1e-9);
}

// --- T10: scheduler band ------------------------------------------------------------------------

TEST(Golden, T10FastOrSlow) {
  imc::Imc m;
  m.add_states(4);
  m.add_interactive(0, "i", 1);
  m.add_interactive(0, "i", 2);
  m.add_markovian(1, 4.0, 3);
  m.add_markovian(2, 1.0, 3);
  const auto b = imc::absorption_time_bounds(m);
  EXPECT_NEAR(b.min, 0.25, 1e-9);
  EXPECT_NEAR(b.max, 1.0, 1e-9);
}

}  // namespace
