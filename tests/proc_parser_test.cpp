// Tests for the LOTOS-flavoured textual front end of the process calculus.
#include <gtest/gtest.h>

#include "bisim/equivalence.hpp"
#include "core/flow.hpp"
#include "markov/steady.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "proc/generator.hpp"
#include "proc/parser.hpp"

namespace {

using namespace multival;
using namespace multival::proc;

// --- value expressions ------------------------------------------------------

TEST(ProcExprParser, Arithmetic) {
  Env env;
  env.bind("x", 7);
  EXPECT_EQ(parse_value_expr("1 + 2 * 3")->eval(env), 7);
  EXPECT_EQ(parse_value_expr("(1 + 2) * 3")->eval(env), 9);
  EXPECT_EQ(parse_value_expr("x % 4")->eval(env), 3);
  EXPECT_EQ(parse_value_expr("-x + 10")->eval(env), 3);
  EXPECT_EQ(parse_value_expr("min(x, 3) + max(x, 9)")->eval(env), 12);
}

TEST(ProcExprParser, BooleansAndComparisons) {
  Env env;
  env.bind("n", 2);
  EXPECT_EQ(parse_value_expr("n < 3 && n > 0")->eval(env), 1);
  EXPECT_EQ(parse_value_expr("n == 2 || n == 5")->eval(env), 1);
  EXPECT_EQ(parse_value_expr("!(n <= 1)")->eval(env), 1);
  EXPECT_EQ(parse_value_expr("n != 2")->eval(env), 0);
  EXPECT_EQ(parse_value_expr("n >= 3")->eval(env), 0);
}

TEST(ProcExprParser, Errors) {
  EXPECT_THROW((void)parse_value_expr(""), ProcParseError);
  EXPECT_THROW((void)parse_value_expr("1 +"), ProcParseError);
  EXPECT_THROW((void)parse_value_expr("(1"), ProcParseError);
  EXPECT_THROW((void)parse_value_expr("1 2"), ProcParseError);
  EXPECT_THROW((void)parse_value_expr("99999999999"), ProcParseError);
}

// --- behaviours -----------------------------------------------------------------

TEST(ProcBehaviourParser, PrefixChain) {
  Program p;
  const lts::Lts l = generate_term(p, parse_behaviour("A; B; stop"));
  EXPECT_EQ(l.num_states(), 3u);
  EXPECT_EQ(l.actions().name(l.out(0)[0].action), "A");
}

TEST(ProcBehaviourParser, OffersAndValues) {
  Program p;
  const lts::Lts l = generate_term(
      p, parse_behaviour("CH !3 ; OUT ?x:0..1 !(x + 10) ; stop"));
  EXPECT_EQ(l.actions().name(l.out(0)[0].action), "CH !3");
  bool saw = false;
  for (const auto& t : l.all_transitions()) {
    saw = saw || l.actions().name(t.action) == std::string("OUT !1 !11");
  }
  EXPECT_TRUE(saw);
}

TEST(ProcBehaviourParser, ChoiceAndGuard) {
  Program p;
  const lts::Lts l = generate_term(
      p, parse_behaviour("[1 == 1] -> YES; stop [] [0 == 1] -> NO; stop"));
  ASSERT_EQ(l.out(l.initial_state()).size(), 1u);
  EXPECT_EQ(l.actions().name(l.out(l.initial_state())[0].action), "YES");
}

TEST(ProcBehaviourParser, ParallelOperators) {
  Program p;
  const lts::Lts inter = generate_term(
      p, parse_behaviour("A; stop ||| B; stop"));
  EXPECT_EQ(inter.num_states(), 4u);
  const lts::Lts sync = generate_term(
      p, parse_behaviour("S; stop |[S]| S; stop"));
  EXPECT_EQ(sync.num_transitions(), 1u);
}

TEST(ProcBehaviourParser, HideAndRename) {
  Program p;
  const lts::Lts hidden = generate_term(
      p, parse_behaviour("hide A in A; B; stop"));
  EXPECT_TRUE(lts::ActionTable::is_tau(hidden.out(0)[0].action));
  const lts::Lts renamed = generate_term(
      p, parse_behaviour("rename A -> Z in A !1 ; stop"));
  EXPECT_EQ(renamed.actions().name(renamed.out(0)[0].action), "Z !1");
}

TEST(ProcBehaviourParser, SequentialComposition) {
  Program p;
  const lts::Lts l = generate_term(
      p, parse_behaviour("(A; exit) >> (B; stop)"));
  bool saw_tau = false;
  for (const auto& t : l.all_transitions()) {
    saw_tau = saw_tau || lts::ActionTable::is_tau(t.action);
  }
  EXPECT_TRUE(saw_tau);
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("B"))));
}

// --- full programs -----------------------------------------------------------------

TEST(ProcProgramParser, RecursiveCounter) {
  const Program p = parse_program(R"(
    -- a bounded counter, LOTOS style
    process Count (n) :=
        [n < 3] -> UP;   Count (n + 1)
     [] [n > 0] -> DOWN; Count (n - 1)
    endproc
  )");
  const lts::Lts l = generate(p, "Count", {0});
  EXPECT_EQ(l.num_states(), 4u);
  EXPECT_EQ(l.num_transitions(), 6u);
}

TEST(ProcProgramParser, MultipleDefinitionsAndComposition) {
  const Program p = parse_program(R"(
    process Producer := PUT !1 ; Producer endproc
    process Consumer := PUT ?x:0..2 ; GET !x ; Consumer endproc
    process System := hide PUT in (Producer |[PUT]| Consumer) endproc
  )");
  const lts::Lts l = generate(p, "System");
  EXPECT_TRUE(mc::check(l, mc::deadlock_freedom()));
  EXPECT_TRUE(mc::check(l, mc::can_do(mc::act("GET !1"))));
  EXPECT_TRUE(mc::check(l, mc::never(mc::act("GET !2"))));
}

TEST(ProcProgramParser, ParsedModelMatchesBuilderModel) {
  // The same one-place buffer written via the builder API and via text
  // must be strongly bisimilar.
  const Program text = parse_program(R"(
    process Buf := IN ?x:0..1 ; OUT !x ; Buf endproc
  )");
  Program built;
  built.define("Buf", {},
               prefix("IN", {accept("x", 0, 1)},
                      prefix("OUT", {emit(evar("x"))}, call("Buf"))));
  EXPECT_TRUE(bisim::equivalent(generate(text, "Buf"), generate(built, "Buf"),
                                bisim::Equivalence::kStrong));
}

TEST(ProcProgramParser, CommentsBothStyles) {
  const Program p = parse_program(
      "-- lotos comment\n"
      "process P := // c++ comment\n"
      "  A; stop\n"
      "endproc\n");
  EXPECT_EQ(generate(p, "P").num_transitions(), 1u);
}

TEST(ProcProgramParser, NegativeAcceptBounds) {
  const Program p = parse_program(R"(
    process P := CH ?x:-1..1 ; stop endproc
  )");
  const lts::Lts l = generate(p, "P");
  EXPECT_EQ(l.out(l.initial_state()).size(), 3u);
}

TEST(ProcProgramParser, Errors) {
  EXPECT_THROW((void)parse_program("process := stop endproc"),
               ProcParseError);
  EXPECT_THROW((void)parse_program("process P := stop"), ProcParseError);
  EXPECT_THROW((void)parse_program("process P := A stop endproc"),
               ProcParseError);
  EXPECT_THROW((void)parse_behaviour("A; stop trailing"), ProcParseError);
  // Reserved gate name through the parser surfaces the builder's check,
  // wrapped with a source position like every other parse failure.
  EXPECT_THROW((void)parse_behaviour("i; stop"), ProcParseError);
}

TEST(ProcProgramParser, ErrorMessageHasPosition) {
  try {
    (void)parse_program("process P :=\n  A;\nendproc");
    FAIL() << "expected ProcParseError";
  } catch (const ProcParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    // The structured diagnostic carries the same position plus the token.
    EXPECT_EQ(e.diagnostic().code, "MV010");
    EXPECT_EQ(e.diagnostic().line, 3u);
    EXPECT_NE(e.diagnostic().message.find("near end of input"),
              std::string::npos);
  }
}

TEST(ProcProgramParser, BuilderErrorsCarryPosition) {
  try {
    (void)parse_behaviour("A; i; stop");
    FAIL() << "expected ProcParseError";
  } catch (const ProcParseError& e) {
    EXPECT_EQ(e.diagnostic().code, "MV010");
    EXPECT_EQ(e.diagnostic().line, 1u);
    EXPECT_EQ(e.diagnostic().column, 4u);
    EXPECT_NE(e.diagnostic().message.find("reserved"), std::string::npos);
  }
  try {
    (void)parse_behaviour("G ?x:5..1 ; stop");
    FAIL() << "expected ProcParseError";
  } catch (const ProcParseError& e) {
    EXPECT_NE(e.diagnostic().message.find("empty range"), std::string::npos);
    EXPECT_EQ(e.diagnostic().line, 1u);
  }
  try {
    (void)parse_program(
        "process P := stop endproc\nprocess P := stop endproc");
    FAIL() << "expected ProcParseError";
  } catch (const ProcParseError& e) {
    EXPECT_NE(e.diagnostic().message.find("redefinition"), std::string::npos);
    EXPECT_EQ(e.diagnostic().line, 2u);
  }
}

// --- pretty-printer round trips ------------------------------------------------------

TEST(PrettyPrint, TermSyntaxReparses) {
  const TermPtr t = hide(
      {"MID"},
      par(prefix("IN", {accept("x", 0, 1)},
                 prefix("MID", {emit(evar("x"))}, stop())),
          {"MID"},
          choice({guard(lit(1) == lit(1),
                        prefix("MID", {accept("y", 0, 1)}, exit_())),
                  prefix("OTHER", stop())})));
  const TermPtr back = parse_behaviour(t->to_string());
  Program empty;
  EXPECT_TRUE(bisim::equivalent(generate_term(empty, t),
                                generate_term(empty, back),
                                bisim::Equivalence::kStrong))
      << t->to_string();
}

TEST(PrettyPrint, ProgramSyntaxReparses) {
  Program p;
  p.define("Count", {"n"},
           choice({guard(evar("n") < lit(2),
                         prefix("UP", call("Count", {evar("n") + lit(1)}))),
                   guard(evar("n") > lit(0),
                         prefix("DN", call("Count", {evar("n") - lit(1)})))}));
  p.define("Main", {}, rename({{"UP", "TICK"}}, call("Count", {lit(0)})));
  const Program back = parse_program(p.to_string());
  EXPECT_TRUE(bisim::equivalent(generate(p, "Main"), generate(back, "Main"),
                                bisim::Equivalence::kStrong))
      << p.to_string();
}

TEST(PrettyPrint, SeqAndExprsReparse) {
  const TermPtr t =
      seq(prefix("A", {emit(emin(lit(3), lit(5)) + lit(1))}, exit_()),
          prefix("B", stop()));
  const TermPtr back = parse_behaviour(t->to_string());
  Program empty;
  EXPECT_TRUE(bisim::equivalent(generate_term(empty, t),
                                generate_term(empty, back),
                                bisim::Equivalence::kStrong));
}

// --- a textual model through the whole flow ---------------------------------------

TEST(ProcProgramParser, TextualModelEndToEnd) {
  const Program p = parse_program(R"(
    process Station :=
        ARRIVE; SERVE; Station
    endproc
  )");
  const lts::Lts l = generate(p, "Station");
  const imc::Imc m =
      core::decorate_with_rates(l, {{"ARRIVE", 1.0}, {"SERVE", 4.0}});
  const auto closed = core::close_model(m);
  const auto pi = markov::steady_state(closed.ctmc);
  EXPECT_NEAR(markov::throughput(closed.ctmc, pi, "SERVE"), 0.8, 1e-9);
}

}  // namespace
