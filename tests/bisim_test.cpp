// Unit and property tests for the bisim/ module.
#include <gtest/gtest.h>

#include <random>

#include "bisim/branching.hpp"
#include "bisim/equivalence.hpp"
#include "bisim/partition.hpp"
#include "bisim/strong.hpp"
#include "lts/analysis.hpp"
#include "lts/product.hpp"

namespace {

using namespace multival;
using namespace multival::bisim;
using lts::Lts;
using lts::StateId;

// --- Partition --------------------------------------------------------------

TEST(Partition, TrivialPartition) {
  Partition p(4);
  EXPECT_EQ(p.num_blocks(), 1u);
  EXPECT_EQ(p.num_states(), 4u);
  EXPECT_EQ(p.block_of(3), 0u);
}

TEST(Partition, EmptyPartition) {
  Partition p(0);
  EXPECT_EQ(p.num_blocks(), 0u);
}

TEST(Partition, NormalizeCompactsIds) {
  Partition p({5, 5, 2, 9}, 10);
  EXPECT_EQ(p.normalize(), 3u);
  EXPECT_EQ(p.block_of(0), p.block_of(1));
  EXPECT_NE(p.block_of(0), p.block_of(2));
}

TEST(Partition, RejectsOutOfRangeBlocks) {
  EXPECT_THROW(Partition({0, 3}, 2), std::invalid_argument);
}

TEST(Partition, SameGroupingIgnoresBlockNames) {
  Partition a({0, 0, 1}, 2);
  Partition b({1, 1, 0}, 2);
  Partition c({0, 1, 1}, 2);
  EXPECT_TRUE(a.same_grouping(b));
  EXPECT_FALSE(a.same_grouping(c));
}

TEST(Partition, BlocksListsMembers) {
  Partition p({0, 1, 0}, 2);
  const auto bs = p.blocks();
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0].size(), 2u);
  EXPECT_EQ(bs[1].size(), 1u);
}

TEST(Partition, IntersectRefinesBoth) {
  Partition a({0, 0, 1, 1}, 2);
  Partition b({0, 1, 0, 1}, 2);
  const Partition c = Partition::intersect(a, b);
  EXPECT_EQ(c.num_blocks(), 4u);
}

TEST(Partition, IntersectWithSelfIsIdentity) {
  Partition a({0, 1, 0, 2}, 3);
  EXPECT_TRUE(Partition::intersect(a, a).same_grouping(a));
}

// --- Strong bisimulation ------------------------------------------------------

// Two parallel "coin" states with identical behaviour must merge.
TEST(Strong, MergesTwinStates) {
  Lts l;
  l.add_states(4);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "A", 2);
  l.add_transition(1, "B", 3);
  l.add_transition(2, "B", 3);
  const MinimizeResult r = minimize_strong(l);
  EXPECT_EQ(r.quotient.num_states(), 3u);
  EXPECT_EQ(r.partition.block_of(1), r.partition.block_of(2));
}

TEST(Strong, DistinguishesByLabel) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "A", 2);
  l.add_transition(1, "B", 1);
  l.add_transition(2, "C", 2);
  const MinimizeResult r = minimize_strong(l);
  EXPECT_EQ(r.quotient.num_states(), 3u);
  EXPECT_NE(r.partition.block_of(1), r.partition.block_of(2));
}

TEST(Strong, CycleUnrollingCollapses) {
  // A 4-cycle of "A" actions is strongly bisimilar to a 1-cycle.
  Lts l;
  l.add_states(4);
  for (StateId s = 0; s < 4; ++s) {
    l.add_transition(s, "A", (s + 1) % 4);
  }
  const MinimizeResult r = minimize_strong(l);
  EXPECT_EQ(r.quotient.num_states(), 1u);
  EXPECT_EQ(r.quotient.num_transitions(), 1u);
}

TEST(Strong, TauIsAnOrdinaryLabel) {
  // Strong bisimulation does NOT abstract from tau.
  Lts a;
  a.add_states(2);
  a.add_transition(0, "i", 1);
  a.add_transition(1, "B", 1);
  Lts b;
  b.add_states(1);
  b.add_transition(0, "B", 0);
  EXPECT_FALSE(equivalent(a, b, Equivalence::kStrong));
}

TEST(Strong, RespectsInitialPartition) {
  // Twin deadlock states forced apart by the initial partition (used for
  // reward-compatible lumping).
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "A", 2);
  const Partition init({0, 1, 2}, 3);
  const Partition p = strong_partition(l, init);
  EXPECT_NE(p.block_of(1), p.block_of(2));
  const Partition trivial = strong_partition(l);
  EXPECT_EQ(trivial.block_of(1), trivial.block_of(2));
}

TEST(Strong, QuotientDeduplicatesTransitions) {
  Lts l;
  l.add_states(3);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "A", 2);
  l.add_transition(1, "B", 0);
  l.add_transition(2, "B", 0);
  const MinimizeResult r = minimize_strong(l);
  EXPECT_EQ(r.quotient.num_states(), 2u);
  EXPECT_EQ(r.quotient.num_transitions(), 2u);
}

// --- Branching bisimulation ---------------------------------------------------

TEST(Branching, InertTauCollapses) {
  // s0 -i-> s1 -A-> s2 : s0 and s1 are branching bisimilar.
  Lts l;
  l.add_states(3);
  l.add_transition(0, "i", 1);
  l.add_transition(1, "A", 2);
  const MinimizeResult r = minimize_branching(l);
  EXPECT_EQ(r.partition.block_of(0), r.partition.block_of(1));
  EXPECT_EQ(r.quotient.num_states(), 2u);
  EXPECT_EQ(r.quotient.num_transitions(), 1u);
}

TEST(Branching, NonInertTauPreserved) {
  // s0 -i-> s1 (deadlock), s0 -A-> s2: the tau discards the A option, so it
  // is observable and must survive minimisation.
  Lts l;
  l.add_states(3);
  l.add_transition(0, "i", 1);
  l.add_transition(0, "A", 2);
  const MinimizeResult r = minimize_branching(l);
  EXPECT_NE(r.partition.block_of(0), r.partition.block_of(1));
  // The two deadlock states merge, but the observable tau must survive.
  EXPECT_EQ(r.quotient.num_states(), 2u);
  bool has_tau = false;
  for (const auto& e : r.quotient.out(r.quotient.initial_state())) {
    has_tau = has_tau || lts::ActionTable::is_tau(e.action);
  }
  EXPECT_TRUE(has_tau);
}

TEST(Branching, TauCycleCollapses) {
  // tau cycle between 0,1 with an exit 1 -A-> 2: all-cycle states merge
  // (divergence-blind).
  Lts l;
  l.add_states(3);
  l.add_transition(0, "i", 1);
  l.add_transition(1, "i", 0);
  l.add_transition(1, "A", 2);
  const MinimizeResult r = minimize_branching(l);
  EXPECT_EQ(r.partition.block_of(0), r.partition.block_of(1));
  EXPECT_EQ(r.quotient.num_states(), 2u);
}

TEST(Branching, DivergenceBlindMergesLivelockWithDeadlock) {
  Lts a;
  a.add_states(1);
  a.add_transition(0, "i", 0);  // livelock
  Lts b;
  b.add_states(1);  // deadlock
  EXPECT_TRUE(equivalent(a, b, Equivalence::kBranching));
  EXPECT_FALSE(equivalent(a, b, Equivalence::kDivergenceBranching));
}

TEST(Branching, DivergenceSensitiveKeepsTauLoop) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "i", 0);
  l.add_transition(0, "A", 1);
  const MinimizeResult r =
      minimize_branching(l, BranchingOptions{/*divergence_sensitive=*/true});
  // The divergent block must keep a tau self-loop.
  bool has_tau_loop = false;
  for (const auto& e : r.quotient.out(r.quotient.initial_state())) {
    if (lts::ActionTable::is_tau(e.action) &&
        e.dst == r.quotient.initial_state()) {
      has_tau_loop = true;
    }
  }
  EXPECT_TRUE(has_tau_loop);
}

TEST(Branching, DivergenceReachableThroughInertTauMerges) {
  // s0 -i-> s1, s1 -i-> s1: s0 can silently reach the divergence, so
  // s0 ~ s1 even divergence-sensitively.
  Lts l;
  l.add_states(2);
  l.add_transition(0, "i", 1);
  l.add_transition(1, "i", 1);
  const Partition p =
      branching_partition(l, BranchingOptions{/*divergence_sensitive=*/true});
  EXPECT_EQ(p.block_of(0), p.block_of(1));
}

TEST(Branching, ClassicCounterexampleToWeakEquality) {
  // a.(b + c) vs a.(b + i.c): branching inequivalent because the tau
  // resolves the choice.
  Lts x;  // a.(b + c)
  x.add_states(3);
  x.add_transition(0, "a", 1);
  x.add_transition(1, "b", 2);
  x.add_transition(1, "c", 2);
  Lts y;  // a.(b + i.c)
  y.add_states(4);
  y.add_transition(0, "a", 1);
  y.add_transition(1, "b", 2);
  y.add_transition(1, "i", 3);
  y.add_transition(3, "c", 2);
  EXPECT_FALSE(equivalent(x, y, Equivalence::kBranching));
}

TEST(Branching, TauChainBeforeSingleActionCollapses) {
  // i.i.i.a  ~branching~  a
  Lts x;
  x.add_states(4);
  x.add_transition(0, "i", 1);
  x.add_transition(1, "i", 2);
  x.add_transition(2, "a", 3);
  Lts y;
  y.add_states(2);
  y.add_transition(0, "a", 1);
  EXPECT_TRUE(equivalent(x, y, Equivalence::kBranching));
  EXPECT_TRUE(equivalent(x, y, Equivalence::kDivergenceBranching));
  EXPECT_FALSE(equivalent(x, y, Equivalence::kStrong));
}

Lts random_lts(std::uint32_t seed, std::size_t num_states,
               std::size_t num_labels, double tau_fraction) {
  std::mt19937 rng(seed);
  Lts l;
  l.add_states(num_states);
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < num_labels; ++i) {
    labels.push_back("L" + std::to_string(i));
  }
  std::uniform_int_distribution<StateId> state(
      0, static_cast<StateId>(num_states - 1));
  std::uniform_int_distribution<std::size_t> label(0, num_labels - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const std::size_t num_edges = num_states * 2;
  for (std::size_t i = 0; i < num_edges; ++i) {
    const StateId src = state(rng);
    const StateId dst = state(rng);
    if (coin(rng) < tau_fraction) {
      l.add_transition(src, "i", dst);
    } else {
      l.add_transition(src, std::string_view(labels[label(rng)]), dst);
    }
  }
  l.set_initial_state(0);
  return l;
}

// --- weak (observational) bisimulation ------------------------------------------

TEST(Weak, TauPrefixAbsorbed) {
  // a.tau.b  ~weak~  a.b, but not strongly.
  Lts x;
  x.add_states(4);
  x.add_transition(0, "a", 1);
  x.add_transition(1, "i", 2);
  x.add_transition(2, "b", 3);
  Lts y;
  y.add_states(3);
  y.add_transition(0, "a", 1);
  y.add_transition(1, "b", 2);
  EXPECT_TRUE(equivalent(x, y, Equivalence::kWeak));
  EXPECT_FALSE(equivalent(x, y, Equivalence::kStrong));
}

TEST(Weak, CoarserThanBranchingOnCanonicalExample) {
  // B1 = a.(b + tau.c)   vs   B2 = a.(b + tau.c) + a.c:
  // weakly bisimilar, not branching bisimilar (van Glabbeek-Weijland).
  Lts b1;
  b1.add_states(4);
  b1.add_transition(0, "a", 1);
  b1.add_transition(1, "b", 3);
  b1.add_transition(1, "i", 2);
  b1.add_transition(2, "c", 3);
  Lts b2 = b1;
  const lts::StateId extra = b2.add_state();
  b2.add_transition(0, "a", extra);
  b2.add_transition(extra, "c", 3);
  EXPECT_TRUE(equivalent(b1, b2, Equivalence::kWeak));
  EXPECT_FALSE(equivalent(b1, b2, Equivalence::kBranching));
}

TEST(Weak, StillDistinguishesDecidingTau) {
  // a.(b + c) vs a.(b + i.c): the tau discards b, so even weak
  // bisimulation separates them.
  Lts x;
  x.add_states(3);
  x.add_transition(0, "a", 1);
  x.add_transition(1, "b", 2);
  x.add_transition(1, "c", 2);
  Lts y;
  y.add_states(4);
  y.add_transition(0, "a", 1);
  y.add_transition(1, "b", 2);
  y.add_transition(1, "i", 3);
  y.add_transition(3, "c", 2);
  EXPECT_FALSE(equivalent(x, y, Equivalence::kWeak));
}

TEST(Weak, MinimizeCollapsesTauChain) {
  Lts l;
  l.add_states(4);
  l.add_transition(0, "i", 1);
  l.add_transition(1, "i", 2);
  l.add_transition(2, "A", 3);
  const MinimizeResult r = minimize(l, Equivalence::kWeak);
  EXPECT_EQ(r.quotient.num_states(), 2u);
  EXPECT_TRUE(equivalent(l, r.quotient, Equivalence::kWeak));
}

TEST(Weak, SpectrumOrdering) {
  // strong refines weak refines (is coarser than) ... on random systems:
  // |strong quotient| >= |branching quotient| >= |weak quotient|.
  for (std::uint32_t seed = 0; seed < 6; ++seed) {
    const Lts l = random_lts(seed, 30, 3, 0.3);
    const auto s = minimize(l, Equivalence::kStrong).quotient.num_states();
    const auto b = minimize(l, Equivalence::kBranching).quotient.num_states();
    const auto w = minimize(l, Equivalence::kWeak).quotient.num_states();
    EXPECT_GE(s, b);
    EXPECT_GE(b, w);
  }
}

// --- Equivalence checking -------------------------------------------------------

TEST(Equivalence, IdenticalLtsAreEquivalent) {
  Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "B", 0);
  for (const auto e : {Equivalence::kStrong, Equivalence::kBranching,
                       Equivalence::kDivergenceBranching}) {
    EXPECT_TRUE(equivalent(l, l, e)) << to_string(e);
  }
}

TEST(Equivalence, DifferentTracesNotEquivalent) {
  Lts a;
  a.add_states(2);
  a.add_transition(0, "A", 1);
  Lts b;
  b.add_states(2);
  b.add_transition(0, "B", 1);
  EXPECT_FALSE(equivalent(a, b, Equivalence::kStrong));
  EXPECT_FALSE(equivalent(a, b, Equivalence::kBranching));
}

TEST(Equivalence, ToStringNames) {
  EXPECT_STREQ(to_string(Equivalence::kStrong), "strong");
  EXPECT_STREQ(to_string(Equivalence::kBranching), "branching");
  EXPECT_STREQ(to_string(Equivalence::kDivergenceBranching), "divbranching");
}

TEST(Equivalence, DisjointUnionLayout) {
  Lts a;
  a.add_states(2);
  a.add_transition(0, "A", 1);
  Lts b;
  b.add_states(3);
  b.add_transition(0, "B", 2);
  const DisjointUnion u = disjoint_union(a, b);
  EXPECT_EQ(u.lts.num_states(), 5u);
  EXPECT_EQ(u.b_offset, 2u);
  EXPECT_EQ(u.lts.num_transitions(), 2u);
}

// --- Property-based: random LTSs ------------------------------------------------


class BisimProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BisimProperty, QuotientIsEquivalentToOriginal) {
  const Lts l = random_lts(GetParam(), 40, 3, 0.3);
  for (const auto e : {Equivalence::kStrong, Equivalence::kBranching,
                       Equivalence::kDivergenceBranching}) {
    const MinimizeResult r = minimize(l, e);
    EXPECT_TRUE(equivalent(l, r.quotient, e)) << to_string(e);
  }
}

TEST_P(BisimProperty, MinimizationIsIdempotent) {
  const Lts l = random_lts(GetParam(), 40, 3, 0.3);
  for (const auto e : {Equivalence::kStrong, Equivalence::kBranching,
                       Equivalence::kDivergenceBranching}) {
    const MinimizeResult once = minimize(l, e);
    const MinimizeResult twice = minimize(once.quotient, e);
    EXPECT_EQ(once.quotient.num_states(), twice.quotient.num_states())
        << to_string(e);
  }
}

TEST_P(BisimProperty, StrongRefinesBranching) {
  const Lts l = random_lts(GetParam(), 40, 3, 0.3);
  const std::size_t strong = minimize(l, Equivalence::kStrong)
                                 .quotient.num_states();
  const std::size_t div =
      minimize(l, Equivalence::kDivergenceBranching).quotient.num_states();
  const std::size_t branching =
      minimize(l, Equivalence::kBranching).quotient.num_states();
  EXPECT_GE(strong, div);
  EXPECT_GE(div, branching);
}

TEST_P(BisimProperty, UnionWithSelfIsEquivalent) {
  const Lts l = random_lts(GetParam(), 25, 3, 0.2);
  for (const auto e : {Equivalence::kStrong, Equivalence::kBranching,
                       Equivalence::kDivergenceBranching}) {
    EXPECT_TRUE(equivalent(l, l, e)) << to_string(e);
  }
}

TEST_P(BisimProperty, MinimizationIsCongruenceForParallel) {
  // minimize(a) || b  ~  a || b   (congruence of strong bisim w.r.t. ||).
  const Lts a = random_lts(GetParam(), 12, 3, 0.0);
  const Lts b = random_lts(GetParam() + 1000, 12, 3, 0.0);
  const std::vector<std::string> sync{"L0"};
  const MinimizeResult ra = minimize(a, Equivalence::kStrong);
  const Lts lhs = lts::parallel(ra.quotient, b, sync);
  const Lts rhs = lts::parallel(a, b, sync);
  EXPECT_TRUE(equivalent(lhs, rhs, Equivalence::kStrong));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisimProperty,
                         ::testing::Range(0u, 12u));

}  // namespace
