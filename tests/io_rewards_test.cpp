// Tests for reward measures, IMC textual I/O, and DOT export.
#include <gtest/gtest.h>

#include <cmath>

#include "imc/compose.hpp"
#include "imc/imc_io.hpp"
#include "lts/lts_io.hpp"
#include "markov/absorption.hpp"
#include "markov/rewards.hpp"

namespace {

using namespace multival;
using namespace multival::markov;

// --- accumulated rewards ------------------------------------------------------

TEST(Rewards, AccumulatedRewardGeneralisesExpectedTime) {
  // With unit rewards the accumulated reward equals the absorption time.
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 2.0);
  c.add_transition(1, 2, 4.0);
  const std::vector<double> unit(3, 1.0);
  const auto acc = expected_accumulated_reward(c, unit);
  const auto time = expected_time_to_absorption(c);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(acc[s], time[s], 1e-12);
  }
}

TEST(Rewards, AccumulatedRewardWeightsStates) {
  // Reward 3 while in state 0 (sojourn 1/2), 0 elsewhere: total 1.5.
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 2.0);
  const std::vector<double> r{3.0, 0.0};
  const auto acc = expected_accumulated_reward(c, r);
  EXPECT_NEAR(acc[0], 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(acc[1], 0.0);
}

TEST(Rewards, AccumulatedRewardInfiniteWithoutAbsorption) {
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1.0);
  const std::vector<double> unit(2, 1.0);
  const auto acc = expected_accumulated_reward(c, unit);
  EXPECT_TRUE(std::isinf(acc[0]));
}

TEST(Rewards, TransitionCountGeometric) {
  // State 0 retries (label "retry", rate 3) or succeeds (rate 1):
  // E[#retry] = 3 (geometric with success prob 1/4).
  Ctmc c;
  c.add_states(2);
  c.add_transition(0, 0, 3.0, "retry");
  c.add_transition(0, 1, 1.0, "done");
  const auto retries = expected_transition_count(c, "retry");
  EXPECT_NEAR(retries[0], 3.0, 1e-9);
  const auto dones = expected_transition_count(c, "done");
  EXPECT_NEAR(dones[0], 1.0, 1e-9);
}

TEST(Rewards, TransitionCountAlongChain) {
  Ctmc c;
  c.add_states(4);
  c.add_transition(0, 1, 1.0, "hop");
  c.add_transition(1, 2, 1.0, "hop");
  c.add_transition(2, 3, 1.0, "other");
  const auto hops = expected_transition_count(c, "hop");
  EXPECT_NEAR(hops[0], 2.0, 1e-9);
  EXPECT_NEAR(hops[1], 1.0, 1e-9);
  EXPECT_NEAR(hops[2], 0.0, 1e-9);
}

TEST(Rewards, SizeMismatchThrows) {
  Ctmc c;
  c.add_states(2);
  const std::vector<double> bad{1.0};
  EXPECT_THROW((void)expected_accumulated_reward(c, bad),
               std::invalid_argument);
}

// --- IMC textual I/O -------------------------------------------------------------

TEST(ImcIo, RoundTrip) {
  imc::Imc m;
  m.add_states(3);
  m.add_interactive(0, "GO !1", 1);
  m.add_markovian(1, 2.5, 2, "serve");
  m.add_markovian(2, 0.5, 0);
  m.set_initial_state(0);
  const imc::Imc back = imc::from_aut(imc::to_aut(m));
  EXPECT_EQ(back.num_states(), 3u);
  EXPECT_EQ(back.num_interactive(), 1u);
  EXPECT_EQ(back.num_markovian(), 2u);
  ASSERT_EQ(back.markovian(1).size(), 1u);
  EXPECT_DOUBLE_EQ(back.markovian(1)[0].rate, 2.5);
  EXPECT_EQ(back.markovian(1)[0].label, "serve");
  EXPECT_DOUBLE_EQ(back.markovian(2)[0].rate, 0.5);
  EXPECT_TRUE(back.markovian(2)[0].label.empty());
}

TEST(ImcIo, PlainAutLoadsAsInteractive) {
  const imc::Imc m = imc::from_aut("des (0, 2, 2)\n(0, \"A\", 1)\n(1, i, 0)\n");
  EXPECT_EQ(m.num_interactive(), 2u);
  EXPECT_EQ(m.num_markovian(), 0u);
}

TEST(ImcIo, RateSyntax) {
  const imc::Imc m = imc::from_aut(
      "des (0, 2, 2)\n"
      "(0, \"rate 1.5\", 1)\n"
      "(1, \"POP !0; rate 2\", 0)\n");
  EXPECT_EQ(m.num_markovian(), 2u);
  EXPECT_EQ(m.markovian(1)[0].label, "POP !0");
}

TEST(ImcIo, BadRateRejected) {
  EXPECT_THROW((void)imc::from_aut("des (0, 1, 2)\n(0, \"rate zero\", 1)\n"),
               std::runtime_error);
  EXPECT_THROW((void)imc::from_aut("des (0, 1, 2)\n(0, \"rate -1\", 1)\n"),
               std::runtime_error);
}

TEST(ImcIo, RoundTripPreservesSemantics) {
  imc::Imc m;
  m.add_states(2);
  m.add_markovian(0, 4.0, 1, "fire");
  const imc::Imc back = imc::from_aut(imc::to_aut(m));
  const auto a = imc::to_ctmc(m);
  const auto b = imc::to_ctmc(back);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(a.ctmc),
              markov::expected_absorption_time_from_initial(b.ctmc), 1e-12);
}

// --- DOT export ---------------------------------------------------------------------

TEST(Dot, BasicStructure) {
  lts::Lts l;
  l.add_states(2);
  l.add_transition(0, "GO \"x\"", 1);
  l.add_transition(1, "i", 0);
  const std::string dot = lts::to_dot(l);
  EXPECT_NE(dot.find("digraph lts"), std::string::npos);
  EXPECT_NE(dot.find("0 [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // tau edge
  EXPECT_NE(dot.find("GO \\\"x\\\""), std::string::npos);  // escaping
}

}  // namespace
