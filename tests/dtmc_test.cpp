// Tests for the DTMC module and the embedded-chain relationship, plus
// parser robustness sweeps.
#include <gtest/gtest.h>

#include <random>

#include "markov/dtmc.hpp"
#include "markov/steady.hpp"
#include "mc/parser.hpp"
#include "proc/parser.hpp"

namespace {

using namespace multival;
using namespace multival::markov;

// --- DTMC basics --------------------------------------------------------------

TEST(DtmcTest, Validation) {
  // Non-square.
  EXPECT_THROW(Dtmc(SparseMatrix::from_triplets(1, 2, {{0, 0, 1.0}}),
                    {1.0}),
               std::invalid_argument);
  // Bad row sum.
  EXPECT_THROW(Dtmc(SparseMatrix::from_triplets(2, 2, {{0, 1, 0.5},
                                                       {1, 0, 1.0}}),
                    {1.0, 0.0}),
               std::invalid_argument);
  // Initial size mismatch.
  EXPECT_THROW(Dtmc(SparseMatrix::from_triplets(2, 2, {{0, 1, 1.0},
                                                       {1, 0, 1.0}}),
                    {1.0}),
               std::invalid_argument);
}

TEST(DtmcTest, AbsorbingRowsGetSelfLoops) {
  // Row 1 empty -> absorbing self-loop.
  const Dtmc d(SparseMatrix::from_triplets(2, 2, {{0, 1, 1.0}}),
               {1.0, 0.0});
  const auto v = d.distribution_after(5);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
}

TEST(DtmcTest, DistributionAfterSteps) {
  // Deterministic 3-cycle.
  const Dtmc d(SparseMatrix::from_triplets(
                   3, 3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}}),
               {1.0, 0.0, 0.0});
  EXPECT_NEAR(d.distribution_after(1)[1], 1.0, 1e-12);
  EXPECT_NEAR(d.distribution_after(3)[0], 1.0, 1e-12);
}

TEST(DtmcTest, StationaryTwoState) {
  // P = [[0.5, 0.5], [0.25, 0.75]] -> psi = (1/3, 2/3).
  const Dtmc d(SparseMatrix::from_triplets(
                   2, 2,
                   {{0, 0, 0.5}, {0, 1, 0.5}, {1, 0, 0.25}, {1, 1, 0.75}}),
               {1.0, 0.0});
  const auto psi = d.stationary();
  EXPECT_NEAR(psi[0], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(psi[1], 2.0 / 3.0, 1e-6);
}

TEST(DtmcTest, StationaryHandlesPeriodicChains) {
  // The 2-cycle is periodic: Cesàro averaging still gives (0.5, 0.5).
  const Dtmc d(SparseMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}}),
               {1.0, 0.0});
  const auto psi = d.stationary();
  EXPECT_NEAR(psi[0], 0.5, 1e-6);
  EXPECT_NEAR(psi[1], 0.5, 1e-6);
}

// --- embedded chain -----------------------------------------------------------

TEST(Embedded, JumpProbabilities) {
  Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(0, 2, 3.0);
  const Dtmc d = embedded_dtmc(c);
  const auto v = d.distribution_after(1);
  EXPECT_NEAR(v[1], 0.25, 1e-12);
  EXPECT_NEAR(v[2], 0.75, 1e-12);
}

TEST(Embedded, SojournWeightingRecoversCtmcSteadyState) {
  // pi_CTMC(s) ∝ psi_embedded(s) / E(s) on an irreducible chain.
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> rate(0.2, 4.0);
  Ctmc c;
  const std::size_t n = 6;
  c.add_states(n);
  for (MState s = 0; s < n; ++s) {
    c.add_transition(s, (s + 1) % n, rate(rng));
    c.add_transition(s, (s + 2) % n, rate(rng));
  }
  const auto pi = steady_state(c);
  const auto psi = embedded_dtmc(c).stationary();
  const auto exits = c.exit_rates();
  std::vector<double> weighted(n);
  double total = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    weighted[s] = psi[s] / exits[s];
    total += weighted[s];
  }
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_NEAR(weighted[s] / total, pi[s], 1e-5) << "state " << s;
  }
}

// --- parser robustness: garbage never crashes -----------------------------------

class FuzzSeed : public ::testing::TestWithParam<std::uint32_t> {};

std::string random_garbage(std::uint32_t seed) {
  static const char alphabet[] =
      "abcXYZ01 ;:!?().,[]<>|&-+*/'\"\n\tprocessmunutt";
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> len(0, 60);
  std::uniform_int_distribution<std::size_t> ch(0, sizeof(alphabet) - 2);
  std::string s;
  const std::size_t n = len(rng);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(alphabet[ch(rng)]);
  }
  return s;
}

TEST_P(FuzzSeed, FormulaParserThrowsCleanly) {
  const std::string input = random_garbage(GetParam());
  try {
    (void)mc::parse_formula(input);
  } catch (const mc::ParseError&) {
    // expected for garbage
  } catch (const std::invalid_argument&) {
    // reserved-name style rejections are also acceptable
  }
}

TEST_P(FuzzSeed, ProcParserThrowsCleanly) {
  const std::string input = random_garbage(GetParam() + 1000);
  try {
    (void)proc::parse_program(input);
  } catch (const proc::ProcParseError&) {
  } catch (const std::invalid_argument&) {
  }
  try {
    (void)proc::parse_behaviour(input);
  } catch (const proc::ProcParseError&) {
  } catch (const std::invalid_argument&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Garbage, FuzzSeed, ::testing::Range(0u, 50u));

}  // namespace
