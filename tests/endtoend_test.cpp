// End-to-end integration tests crossing every layer of the stack: textual
// model -> generation -> verification (+ diagnostics) -> minimisation ->
// .aut round trip -> decoration -> lumping -> solving -> simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "bisim/equivalence.hpp"
#include "bisim/trace.hpp"
#include "core/flow.hpp"
#include "imc/compose.hpp"
#include "imc/imc_io.hpp"
#include "lts/lts_io.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"
#include "markov/transient.hpp"
#include "mc/diagnostic.hpp"
#include "mc/parser.hpp"
#include "phase/phase_type.hpp"
#include "proc/generator.hpp"
#include "proc/parser.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace multival;

TEST(EndToEnd, TextualModelThroughEntirePipeline) {
  // 1. A producer/consumer system written as text.
  const proc::Program program = proc::parse_program(R"(
    -- bounded relay: producer -> cell -> consumer
    process Producer := PUT !1 ; PUT !0 ; Producer endproc
    process Cell     := PUT ?x:0..1 ; GET !x ; Cell endproc
    process Consumer := GET ?y:0..1 ; WORKED !y ; Consumer endproc
    process System   :=
      hide PUT, GET in ((Producer |[PUT]| Cell) |[GET]| Consumer)
    endproc
  )");
  const lts::Lts l = proc::generate(program, "System");

  // 2. Verify with a parsed textual property, plus the standard battery.
  const auto report = core::verify(
      l, {{"eventually works",
           mc::parse_formula("mu X. (<'WORKED*'> tt || <any> X)")}});
  EXPECT_TRUE(report.all_hold()) << report.to_string();

  // 3. Minimise and round-trip through .aut text.
  const auto reduced = bisim::minimize(l, bisim::Equivalence::kBranching);
  const lts::Lts reloaded = lts::from_aut(lts::to_aut(reduced.quotient));
  EXPECT_TRUE(bisim::equivalent(l, reloaded, bisim::Equivalence::kBranching));

  // 4. Decorate with rates, round-trip the IMC through its text format.
  const imc::Imc timed = core::decorate_with_rates(
      reloaded, {{"WORKED", 2.0}});
  const imc::Imc timed_reloaded = imc::from_aut(imc::to_aut(timed));

  // 5. Close and solve: the WORKED throughput survives the whole journey.
  const auto closed = core::close_model(timed_reloaded);
  const auto pi = markov::steady_state(closed.ctmc);
  const double thr = markov::throughput(closed.ctmc, pi, "WORKED*");
  EXPECT_NEAR(thr, 2.0, 1e-9);  // only the WORKED gate is timed

  // 6. Cross-check with the discrete-event simulator.
  sim::SimOptions opts;
  opts.horizon = 3000.0;
  const sim::Estimate est =
      sim::simulate_throughput(closed.ctmc, "WORKED*", opts);
  EXPECT_TRUE(est.contains(thr));
}

TEST(EndToEnd, DefectiveModelDiagnosedWithTrace) {
  // A protocol with a seeded deadlock: verification fails and the report
  // carries a usable shortest trace.
  const proc::Program program = proc::parse_program(R"(
    process Left  := REQ ; ACK ; Left endproc
    process Right := REQ ; REQ ; ACK ; Right endproc
    process Sys   := Left |[REQ, ACK]| Right endproc
  )");
  const lts::Lts l = proc::generate(program, "Sys");
  const auto report = core::verify(l);
  EXPECT_FALSE(report.all_hold());
  EXPECT_NE(report.to_string().find("shortest trace"), std::string::npos);
  // The on-the-fly search agrees without building the full space.
  const auto search = proc::find_deadlock(program, "Sys");
  EXPECT_TRUE(search.found);
  ASSERT_FALSE(search.trace.empty());
  EXPECT_EQ(search.trace[0], "REQ");
}

TEST(EndToEnd, ConstraintOrientedDelayAndBoundedReachability) {
  // Request/response with an Erlang-3 service delay: bounded reachability
  // of "done" matches the phase-type CDF.
  proc::Program p;
  p.define("Once", {},
           proc::prefix("S_START", proc::prefix("S_END",
                        proc::prefix("DONE", proc::stop()))));
  const phase::PhaseType service = phase::PhaseType::erlang(3, 6.0);
  const imc::Imc m = core::insert_delays(
      proc::generate(p, "Once"), {{"S_START", "S_END", service}});
  const auto closed = core::close_model(m);
  std::vector<bool> done(closed.ctmc.num_states(), false);
  for (markov::MState s = 0; s < closed.ctmc.num_states(); ++s) {
    done[s] = closed.ctmc.is_absorbing(s);
  }
  for (const double t : {0.2, 0.5, 1.0}) {
    EXPECT_NEAR(markov::bounded_reachability(closed.ctmc, done, t),
                service.cdf(t), 1e-9)
        << "t = " << t;
  }
}

TEST(EndToEnd, ImcParallelAllChainsDelays) {
  // Three delay stages composed n-ary: total absorption time adds up.
  std::vector<imc::Imc> stages;
  const char* starts[] = {"A", "B", "C"};
  for (int i = 0; i < 3; ++i) {
    stages.push_back(phase::delay_process(phase::PhaseType::exponential(2.0),
                                          starts[i],
                                          std::string(starts[i]) + "E"));
  }
  // Driver sequencing the three delays then stopping.
  imc::Imc driver;
  driver.add_states(7);
  driver.add_interactive(0, "A", 1);
  driver.add_interactive(1, "AE", 2);
  driver.add_interactive(2, "B", 3);
  driver.add_interactive(3, "BE", 4);
  driver.add_interactive(4, "C", 5);
  driver.add_interactive(5, "CE", 6);
  std::vector<imc::Imc> all{driver};
  for (auto& s : stages) {
    all.push_back(std::move(s));
  }
  const std::vector<std::string> sync{"A", "AE", "B", "BE", "C", "CE"};
  const imc::Imc sys = imc::parallel_all(all, sync);
  const auto closed = core::close_model(sys);
  EXPECT_NEAR(markov::expected_absorption_time_from_initial(closed.ctmc),
              3.0 / 2.0, 1e-9);
}

TEST(EndToEnd, WeakTraceAbstractionOfCaseStudy) {
  // The closed producer/cell/consumer system determinises to a small
  // automaton whose language only mentions WORKED values.
  const proc::Program program = proc::parse_program(R"(
    process Producer := PUT !1 ; Producer endproc
    process Cell     := PUT ?x:0..1 ; GET !x ; Cell endproc
    process Consumer := GET ?y:0..1 ; WORKED !y ; Consumer endproc
    process System   :=
      hide PUT, GET in ((Producer |[PUT]| Cell) |[GET]| Consumer)
    endproc
  )");
  const lts::Lts l = proc::generate(program, "System");
  const lts::Lts det = bisim::determinize(l);
  // Only value 1 is produced, so the deterministic language is a cycle on
  // "WORKED !1".
  lts::Lts spec;
  spec.add_states(1);
  spec.add_transition(0, "WORKED !1", 0);
  EXPECT_TRUE(bisim::weak_trace_equivalent(l, spec));
  EXPECT_LE(det.num_states(), 2u);
}

TEST(EndToEnd, BoundedReachabilityMonotoneAndConsistent) {
  // On the xSTream-style station: P[reach full within t] is monotone in t
  // and bounded by the unbounded reachability probability.
  markov::Ctmc c;
  c.add_states(4);
  for (int i = 0; i < 3; ++i) {
    c.add_transition(i, i + 1, 1.0);
    c.add_transition(i + 1, i, 2.0);
  }
  std::vector<bool> full{false, false, false, true};
  double prev = 0.0;
  for (const double t : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double p = markov::bounded_reachability(c, full, t);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  const auto unbounded = markov::reachability_probability(c, full);
  EXPECT_LE(prev, unbounded[0] + 1e-9);
  EXPECT_NEAR(unbounded[0], 1.0, 1e-9);  // irreducible: eventually reached
}

}  // namespace
