// Tests for the src/explore subsystem: successor oracles, the concurrent
// state store, the parallel BFS engine (determinism across worker counts),
// and the binary LTS stream format.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bisim/equivalence.hpp"
#include "compose/pipeline.hpp"
#include "core/report.hpp"
#include "explore/engine.hpp"
#include "explore/lts_stream.hpp"
#include "explore/oracle.hpp"
#include "explore/state_store.hpp"
#include "fame/coherence.hpp"
#include "imc/imc_io.hpp"
#include "lts/lts_io.hpp"
#include "lts/product.hpp"
#include "noc/mesh.hpp"
#include "proc/generator.hpp"
#include "xstream/queue_model.hpp"

namespace {

using namespace multival;

bool strongly_equivalent(const lts::Lts& a, const lts::Lts& b) {
  return bisim::equivalent(a, b, bisim::Equivalence::kStrong);
}

// --- StateStore ----------------------------------------------------------

TEST(StateStore, AssignsDenseIdsAndCountsDedup) {
  explore::StateStore store;
  const auto a = store.insert("alpha");
  EXPECT_TRUE(a.fresh);
  EXPECT_EQ(a.id, 0u);
  const auto b = store.insert("beta");
  EXPECT_TRUE(b.fresh);
  EXPECT_EQ(b.id, 1u);
  const auto a2 = store.insert("alpha");
  EXPECT_FALSE(a2.fresh);
  EXPECT_EQ(a2.id, a.id);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dedup_hits(), 1u);
  EXPECT_EQ(store.collisions(), 0u);
}

TEST(StateStore, ConcurrentInsertsAgreeOnIds) {
  explore::StateStore store;
  constexpr int kKeys = 200;
  constexpr int kThreads = 4;
  std::vector<std::vector<lts::StateId>> ids(
      kThreads, std::vector<lts::StateId>(kKeys));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &ids, t] {
      for (int k = 0; k < kKeys; ++k) {
        ids[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)] =
            store.insert("key" + std::to_string(k)).id;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kKeys));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]);
  }
}

TEST(StateStore, NarrowFingerprintDetectsCollisions) {
  explore::StateStore::Options opts;
  opts.mode = explore::StoreMode::kFingerprint;
  opts.fingerprint_bits = 4;  // at most 16 distinct fingerprints
  explore::StateStore store(opts);
  for (int k = 0; k < 256; ++k) {
    (void)store.insert("state" + std::to_string(k));
  }
  EXPECT_LE(store.size(), 16u);
  EXPECT_GT(store.collisions(), 0u);
}

// --- LtsOracle and the engine on a hand-built LTS ------------------------

lts::Lts diamond() {
  lts::Lts l;
  l.add_states(4);
  l.add_transition(0, "A", 1);
  l.add_transition(0, "B", 2);
  l.add_transition(1, "C", 3);
  l.add_transition(2, "C", 3);
  l.set_initial_state(0);
  return l;
}

TEST(Engine, LtsOracleReproducesBfsOrderedLts) {
  const lts::Lts l = diamond();
  const auto oracle = explore::lts_oracle(l);
  const explore::ExploreResult r = explore::explore(*oracle);
  // diamond() is already numbered breadth-first, so the renumbered result
  // is identical, not merely bisimilar.
  EXPECT_EQ(lts::to_aut(r.lts), lts::to_aut(l));
  EXPECT_EQ(r.stats.num_states, 4u);
  EXPECT_EQ(r.stats.num_transitions, 4u);
  EXPECT_EQ(r.stats.levels, 3u);
}

TEST(Engine, DfsYieldsTheSameRenumberedLts) {
  const lts::Lts l = diamond();
  const auto oracle = explore::lts_oracle(l);
  explore::ExploreOptions dfs;
  dfs.order = explore::Order::kDfs;
  const auto r_bfs = explore::explore(*oracle);
  const auto r_dfs = explore::explore(*oracle, dfs);
  EXPECT_EQ(lts::to_aut(r_dfs.lts), lts::to_aut(r_bfs.lts));
}

TEST(Engine, MaxStatesLimitThrows) {
  const proc::Program p = fame::coherence_system_program(fame::Protocol::kMsi);
  const auto oracle = explore::proc_oracle(p, "System");
  explore::ExploreOptions opts;
  opts.max_states = 16;
  EXPECT_THROW((void)explore::explore(*oracle, opts),
               explore::LimitExceeded);
}

// --- determinism across worker counts ------------------------------------

TEST(Engine, DeterministicAcrossWorkerCounts) {
  const proc::Program p = fame::coherence_system_program(fame::Protocol::kMesi);
  const auto oracle = explore::proc_oracle(p, "System");
  std::string reference;
  for (unsigned workers : {1u, 2u, 8u}) {
    explore::ExploreOptions opts;
    opts.workers = workers;
    const explore::ExploreResult r = explore::explore(*oracle, opts);
    EXPECT_EQ(r.stats.workers.size(), workers);
    const std::string aut = lts::to_aut(r.lts);
    if (reference.empty()) {
      reference = aut;
    } else {
      EXPECT_EQ(aut, reference) << "workers=" << workers;
    }
  }
}

// --- explore vs proc::generate on the case studies -----------------------

TEST(Engine, MatchesGeneratorOnFameCoherence) {
  const proc::Program p = fame::coherence_system_program(fame::Protocol::kMsi);
  const lts::Lts generated = proc::generate(p, "System");
  explore::ExploreOptions opts;
  opts.workers = 2;
  const auto r = explore::explore(*explore::proc_oracle(p, "System"), opts);
  EXPECT_EQ(r.lts.num_states(), generated.num_states());
  EXPECT_EQ(r.lts.num_transitions(), generated.num_transitions());
  EXPECT_TRUE(strongly_equivalent(r.lts, generated));
}

TEST(Engine, MatchesGeneratorOnNocSinglePacket) {
  const proc::Program p = noc::single_packet_program(0, 3);
  const lts::Lts generated = proc::generate(p, "Scenario");
  const auto r = explore::explore(*explore::proc_oracle(p, "Scenario"));
  EXPECT_EQ(r.lts.num_states(), generated.num_states());
  EXPECT_EQ(r.lts.num_transitions(), generated.num_transitions());
  EXPECT_TRUE(strongly_equivalent(r.lts, generated));
}

TEST(Engine, MatchesGeneratorOnXstreamQueue) {
  const xstream::QueueConfig cfg;
  const proc::Program p = xstream::virtual_queue_program(cfg);
  const lts::Lts generated = proc::generate(p, "VirtualQueue");
  explore::ExploreOptions opts;
  opts.workers = 4;
  const auto r =
      explore::explore(*explore::proc_oracle(p, "VirtualQueue"), opts);
  EXPECT_EQ(r.lts.num_states(), generated.num_states());
  EXPECT_EQ(r.lts.num_transitions(), generated.num_transitions());
  EXPECT_TRUE(strongly_equivalent(r.lts, generated));
}

// --- hash compaction -----------------------------------------------------

TEST(Engine, FingerprintModeAccountsCollisions) {
  const proc::Program p = fame::coherence_system_program(fame::Protocol::kMsi);
  const auto oracle = explore::proc_oracle(p, "System");

  const auto exact = explore::explore(*oracle);
  EXPECT_EQ(exact.stats.collisions, 0u);

  // Full-width fingerprints: no collision expected on a model this small,
  // and the state count must agree with exact mode.
  explore::ExploreOptions full;
  full.store = explore::StoreMode::kFingerprint;
  const auto compact = explore::explore(*oracle, full);
  EXPECT_EQ(compact.stats.collisions, 0u);
  EXPECT_EQ(compact.stats.num_states, exact.stats.num_states);

  // Deliberately narrow fingerprints: distinct states merge and the store
  // reports it.
  explore::ExploreOptions narrow;
  narrow.store = explore::StoreMode::kFingerprint;
  narrow.fingerprint_bits = 8;
  const auto lossy = explore::explore(*oracle, narrow);
  EXPECT_GT(lossy.stats.collisions, 0u);
  EXPECT_LT(lossy.stats.num_states, exact.stats.num_states);
}

// --- product / hide / imc oracles ----------------------------------------

TEST(Oracles, ProductMatchesLtsParallel) {
  lts::Lts a;
  a.add_states(2);
  a.add_transition(0, "G !1", 1);
  a.add_transition(1, "A", 0);
  a.set_initial_state(0);
  lts::Lts b;
  b.add_states(2);
  b.add_transition(0, "G !1", 1);
  b.add_transition(1, "B", 1);
  b.set_initial_state(0);

  const std::vector<std::string> sync{"G"};
  const lts::Lts reference = lts::parallel(a, b, sync);
  auto oracle = explore::product_oracle(explore::lts_oracle(a),
                                        explore::lts_oracle(b), sync);
  const auto r = explore::explore(*oracle);
  EXPECT_EQ(r.lts.num_states(), reference.num_states());
  EXPECT_EQ(r.lts.num_transitions(), reference.num_transitions());
  EXPECT_TRUE(strongly_equivalent(r.lts, reference));
}

TEST(Oracles, HideMatchesLtsHide) {
  const lts::Lts l = diamond();
  const std::vector<std::string> gates{"C"};
  const lts::Lts reference = lts::hide(l, gates);
  auto oracle = explore::hide_oracle(explore::lts_oracle(l), gates);
  const auto r = explore::explore(*oracle);
  EXPECT_TRUE(strongly_equivalent(r.lts, reference));
}

TEST(Oracles, ImcOracleUsesRateLabelConvention) {
  imc::Imc m;
  m.add_states(3);
  m.add_interactive(0, "GO", 1);
  m.add_markovian(1, 2.5, 2);
  m.add_markovian(1, 0.5, 0, "probe");
  m.set_initial_state(0);

  const auto r = explore::explore(*explore::imc_oracle(m));
  EXPECT_EQ(r.lts.num_states(), 3u);
  EXPECT_EQ(r.lts.num_transitions(), 3u);
  // The rendered aut text round-trips through the imc reader.
  const imc::Imc back = imc::from_aut(lts::to_aut(r.lts));
  EXPECT_EQ(back.num_states(), m.num_states());
  EXPECT_EQ(back.num_interactive(), m.num_interactive());
  EXPECT_EQ(back.num_markovian(), m.num_markovian());
}

// --- binary LTS stream ---------------------------------------------------

TEST(LtsStream, RoundTripsCaseStudyModels) {
  const std::vector<lts::Lts> models{
      fame::coherence_system_lts(fame::Protocol::kMsi),
      noc::single_packet_lts(0, 3),
      xstream::virtual_queue_lts(xstream::QueueConfig{}),
  };
  for (const lts::Lts& l : models) {
    std::stringstream buf;
    explore::write_lts_stream(buf, l);
    const lts::Lts back = explore::read_lts_stream(buf);
    EXPECT_EQ(lts::to_aut(back), lts::to_aut(l));
  }
}

TEST(LtsStream, RoundTripsEmptyAndTrivialLts) {
  {
    lts::Lts l;
    std::stringstream buf;
    explore::write_lts_stream(buf, l);
    const lts::Lts back = explore::read_lts_stream(buf);
    EXPECT_EQ(back.num_states(), 0u);
    EXPECT_EQ(back.num_transitions(), 0u);
  }
  {
    lts::Lts l;
    l.add_states(1);
    l.add_transition(0, "LOOP", 0);
    l.set_initial_state(0);
    std::stringstream buf;
    explore::write_lts_stream(buf, l);
    EXPECT_EQ(lts::to_aut(explore::read_lts_stream(buf)), lts::to_aut(l));
  }
}

TEST(LtsStream, RejectsMalformedInput) {
  {
    std::stringstream buf("not a stream");
    EXPECT_THROW((void)explore::read_lts_stream(buf), std::runtime_error);
  }
  {
    // Valid magic+version but truncated before the end record.
    std::stringstream buf;
    buf.write("MVLS\x01", 5);
    EXPECT_THROW((void)explore::read_lts_stream(buf), std::runtime_error);
  }
}

// Corrupt-input regression suite: every reader error must name the exact
// byte offset at which the stream became invalid.
namespace {
std::string stream_error(const std::string& bytes) {
  std::istringstream is(bytes);
  try {
    (void)explore::read_lts_stream(is);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "(no error)";
}
}  // namespace

TEST(LtsStream, BadMagicReportsByteOffset) {
  EXPECT_EQ(stream_error(std::string("XXLS\x01", 5)),
            "lts_stream: bad magic at byte 4");
}

TEST(LtsStream, TruncatedAndUnsupportedVersionReportByteOffset) {
  EXPECT_EQ(stream_error(std::string("MVLS", 4)),
            "lts_stream: truncated version at byte 4");
  EXPECT_EQ(stream_error(std::string("MVLS\x07", 5)),
            "lts_stream: unsupported version 7 at byte 5");
}

TEST(LtsStream, TruncatedVarintReportsByteOffset) {
  // Label-definition record whose length varint has its continuation bit
  // set on the last byte of the stream.
  EXPECT_EQ(stream_error(std::string("MVLS\x01\x01\x80", 7)),
            "lts_stream: truncated varint in label definition at byte 7");
}

TEST(LtsStream, MissingEndRecordReportsByteOffset) {
  // Initial record (state 0) + state count (2) but no 0x00 end record.
  EXPECT_EQ(stream_error(std::string("MVLS\x01\x03\x00\x04\x02", 9)),
            "lts_stream: missing end record at byte 9");
}

TEST(LtsStream, TrailingGarbageAfterEndRecordReportsByteOffset) {
  lts::Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.set_initial_state(0);
  std::stringstream buf;
  explore::write_lts_stream(buf, l);
  const std::size_t valid_size = buf.str().size();
  buf << "x";
  EXPECT_EQ(stream_error(buf.str()),
            "lts_stream: trailing garbage after end record at byte " +
                std::to_string(valid_size));
}

TEST(LtsStream, StructuralErrorsReportByteOffsets) {
  // Unknown record type 0x7f right after the header.
  EXPECT_EQ(stream_error(std::string("MVLS\x01\x7f", 6)),
            "lts_stream: unknown record type 127 at byte 6");
  // Transition referencing a label id that was never defined.
  EXPECT_EQ(stream_error(std::string("MVLS\x01\x02\x00\x05\x01", 9)),
            "lts_stream: undefined label id 5 at byte 9");
  // Two initial records.
  EXPECT_EQ(stream_error(std::string("MVLS\x01\x03\x00\x03\x00", 9)),
            "lts_stream: duplicate initial record at byte 8");
}

TEST(LtsStream, WriterEnforcesSingleFinish) {
  std::stringstream buf;
  explore::LtsStreamWriter w(buf);
  w.add_transition(0, "A", 1);
  w.set_initial(0);
  w.finish(2);
  EXPECT_TRUE(w.finished());
  EXPECT_THROW(w.finish(2), std::logic_error);
  EXPECT_THROW(w.add_transition(0, "A", 1), std::logic_error);
}

// --- generation log ------------------------------------------------------

TEST(GenerationLog, CaseStudyGeneratorsRecordTheirRuns) {
  core::clear_generation_log();
  const lts::Lts q =
      xstream::virtual_queue_lts_open(xstream::QueueConfig{});
  const auto log = core::generation_log();
  ASSERT_FALSE(log.empty());
  const core::GenerationStat& stat = log.back();
  EXPECT_NE(stat.model.find("virtual queue"), std::string::npos);
  EXPECT_EQ(stat.states, q.num_states());
  EXPECT_EQ(stat.transitions, q.num_transitions());
  EXPECT_GE(stat.seconds, 0.0);
  EXPECT_GE(core::generation_table().num_rows(), 1u);
  core::clear_generation_log();
  EXPECT_TRUE(core::generation_log().empty());
}

TEST(GenerationLog, PipelineStepsReportWallTime) {
  core::clear_generation_log();
  const lts::Lts l = diamond();
  auto tree = compose::minimize_here(
      compose::hide_gates({"C"}, compose::leaf(l, "diamond")));
  compose::EvalStats stats;
  (void)compose::evaluate(tree, true, &stats);
  ASSERT_FALSE(stats.steps.empty());
  double total = 0.0;
  for (const compose::StepStat& s : stats.steps) {
    EXPECT_GE(s.seconds, 0.0);
    total += s.seconds;
  }
  EXPECT_DOUBLE_EQ(stats.total_seconds(), total);
  // Each step also lands in the process-wide generation log.
  EXPECT_EQ(core::generation_log().size(), stats.steps.size());
  const core::Table t = stats.to_table("pipeline");
  EXPECT_EQ(t.num_rows(), stats.steps.size() + 1);  // steps + total row
  core::clear_generation_log();
}

}  // namespace
