// Tests for the case-study extensions: the two-stage xSTream pipeline and
// the FAME2 MPI barrier benchmark.
#include <gtest/gtest.h>

#include <cmath>

#include "fame/mpi.hpp"
#include "lts/analysis.hpp"
#include "xstream/perf.hpp"

namespace {

using namespace multival;

// --- xSTream pipeline ---------------------------------------------------------

TEST(XStreamPipeline, LittleLawHolds) {
  xstream::PipelinePerfParams p;
  p.push_rate = 1.0;
  p.pop_rate = 2.0;
  const auto r = xstream::analyze_pipeline(p);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_NEAR(r.mean_latency * r.throughput,
              r.mean_occ_stage1 + r.mean_occ_stage2, 1e-9);
  EXPECT_GT(r.ctmc_states, 10u);
}

TEST(XStreamPipeline, TwoStagesSlowerThanOne) {
  // End-to-end latency through two queues exceeds one queue's latency at
  // the same rates.
  xstream::QueuePerfParams single;
  single.push_rate = 1.0;
  single.pop_rate = 2.0;
  xstream::PipelinePerfParams pipe;
  pipe.push_rate = 1.0;
  pipe.pop_rate = 2.0;
  const auto rs = xstream::analyze_virtual_queue(single);
  const auto rp = xstream::analyze_pipeline(pipe);
  EXPECT_GT(rp.mean_latency, rs.mean_latency);
  // Throughput is still bounded by the arrival rate.
  EXPECT_LE(rp.throughput, 1.0 + 1e-9);
}

TEST(XStreamPipeline, BottleneckShiftsOccupancy) {
  // A slow consumer piles occupancy into stage 2.
  xstream::PipelinePerfParams p;
  p.push_rate = 2.0;
  p.pop_rate = 0.5;  // consumer is the bottleneck
  const auto r = xstream::analyze_pipeline(p);
  EXPECT_GT(r.mean_occ_stage2, r.mean_occ_stage1 * 0.9);
  EXPECT_LE(r.throughput, 0.5 + 1e-9);
}

TEST(XStreamPipeline, FastRelayApproachesSingleQueueThroughput) {
  xstream::PipelinePerfParams slow;
  slow.handoff_rate = 0.5;
  xstream::PipelinePerfParams fast = slow;
  fast.handoff_rate = 50.0;
  EXPECT_GT(xstream::analyze_pipeline(fast).throughput,
            xstream::analyze_pipeline(slow).throughput);
}

TEST(XStreamPipelineN, TwoStageMatchesDedicatedFunction) {
  xstream::PipelinePerfParams p;
  p.push_rate = 1.0;
  p.pop_rate = 2.0;
  const auto dedicated = xstream::analyze_pipeline(p);
  const auto general = xstream::analyze_pipeline_n(p, 2);
  EXPECT_NEAR(general.throughput, dedicated.throughput, 1e-9);
  EXPECT_NEAR(general.mean_latency, dedicated.mean_latency, 1e-9);
  ASSERT_EQ(general.stage_occupancy.size(), 2u);
  EXPECT_NEAR(general.stage_occupancy[0], dedicated.mean_occ_stage1, 1e-9);
  EXPECT_NEAR(general.stage_occupancy[1], dedicated.mean_occ_stage2, 1e-9);
}

TEST(XStreamPipelineN, LatencyGrowsWithDepth) {
  xstream::PipelinePerfParams p;
  p.push_rate = 1.0;
  p.pop_rate = 2.0;
  const double l2 = xstream::analyze_pipeline_n(p, 2).mean_latency;
  const double l3 = xstream::analyze_pipeline_n(p, 3).mean_latency;
  EXPECT_GT(l3, l2);
}

TEST(XStreamPipelineN, StagesValidated) {
  xstream::PipelinePerfParams p;
  EXPECT_THROW((void)xstream::analyze_pipeline_n(p, 1),
               std::invalid_argument);
  EXPECT_THROW((void)xstream::analyze_pipeline_n(p, 5),
               std::invalid_argument);
}

// --- FAME2 barrier -----------------------------------------------------------------

TEST(Barrier, ScenarioTerminates) {
  fame::BarrierConfig cfg;
  cfg.rounds = 1;
  const lts::Lts l = fame::barrier_lts(cfg);
  EXPECT_EQ(lts::deadlock_states(l).size(), 1u);
  EXPECT_FALSE(lts::has_tau_cycle(l));
}

TEST(Barrier, RoundsValidated) {
  fame::BarrierConfig cfg;
  cfg.rounds = 0;
  EXPECT_THROW((void)fame::barrier_lts(cfg), std::invalid_argument);
}

TEST(Barrier, LatencyFinitePositive) {
  fame::BarrierConfig cfg;
  const auto r = fame::barrier_latency(cfg);
  EXPECT_GT(r.round_latency, 0.0);
  EXPECT_TRUE(std::isfinite(r.round_latency));
}

TEST(Barrier, TopologyOrdering) {
  fame::BarrierConfig cfg;
  cfg.topology = fame::Topology::kBus;
  const double bus = fame::barrier_latency(cfg).round_latency;
  cfg.topology = fame::Topology::kRing;
  const double ring = fame::barrier_latency(cfg).round_latency;
  cfg.topology = fame::Topology::kCrossbar;
  const double xbar = fame::barrier_latency(cfg).round_latency;
  EXPECT_GT(bus, ring);
  EXPECT_GT(ring, xbar);
}

TEST(Barrier, CheaperThanPingPongRound) {
  // A barrier round (two concurrent transactions) beats a ping-pong round
  // (serialised request/reply plus unpacking) on the same fabric.
  fame::BarrierConfig b;
  fame::PingPongConfig pp;
  EXPECT_LT(fame::barrier_latency(b).round_latency,
            fame::pingpong_latency(pp).round_latency);
}

TEST(Barrier, BaseRateScaling) {
  fame::BarrierConfig slow;
  fame::BarrierConfig fast = slow;
  fast.base_rate = 2.0;
  EXPECT_NEAR(fame::barrier_latency(slow).round_latency /
                  fame::barrier_latency(fast).round_latency,
              2.0, 1e-6);
}

}  // namespace
