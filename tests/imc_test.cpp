// Unit and integration tests for the imc/ module: composition, maximal
// progress, lumping, CTMC extraction — the heart of the performance flow.
#include <gtest/gtest.h>

#include <cmath>

#include "imc/compose.hpp"
#include "imc/imc.hpp"
#include "imc/lump.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"

namespace {

using namespace multival;
using namespace multival::imc;

// --- basics -----------------------------------------------------------------

TEST(ImcBasics, AddAndQuery) {
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "A", 1);
  m.add_markovian(1, 2.5, 2, "work");
  EXPECT_EQ(m.num_states(), 3u);
  EXPECT_EQ(m.num_interactive(), 1u);
  EXPECT_EQ(m.num_markovian(), 1u);
  ASSERT_EQ(m.markovian(1).size(), 1u);
  EXPECT_DOUBLE_EQ(m.markovian(1)[0].rate, 2.5);
  EXPECT_EQ(m.markovian(1)[0].label, "work");
}

TEST(ImcBasics, RateValidated) {
  Imc m;
  m.add_states(2);
  EXPECT_THROW(m.add_markovian(0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(m.add_markovian(0, 1.0, 9), std::out_of_range);
}

TEST(ImcBasics, Stability) {
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "i", 1);
  m.add_interactive(1, "A", 2);
  EXPECT_FALSE(m.is_stable(0));      // tau
  EXPECT_TRUE(m.is_stable(1));       // only visible
  EXPECT_FALSE(m.is_markovian_only(1));
  EXPECT_TRUE(m.is_markovian_only(2));
}

TEST(ImcBasics, FromLtsRoundTrip) {
  lts::Lts l;
  l.add_states(2);
  l.add_transition(0, "A", 1);
  l.add_transition(1, "i", 0);
  const Imc m = Imc::from_lts(l);
  EXPECT_EQ(m.num_interactive(), 2u);
  EXPECT_EQ(m.num_markovian(), 0u);
  const lts::Lts back = m.interactive_lts();
  EXPECT_EQ(back.num_transitions(), 2u);
  EXPECT_EQ(back.actions().name(back.out(1)[0].action), "i");
}

// --- composition ----------------------------------------------------------------

TEST(ImcCompose, MarkovianInterleavesUnderSync) {
  // Two pure-delay processes composed with full sync on gates: rates still
  // interleave (memorylessness).
  Imc a;
  a.add_states(2);
  a.add_markovian(0, 1.0, 1);
  Imc b;
  b.add_states(2);
  b.add_markovian(0, 2.0, 1);
  const std::vector<std::string> none{};
  const Imc p = parallel(a, b, none);
  EXPECT_EQ(p.num_states(), 4u);
  EXPECT_EQ(p.num_markovian(), 4u);
  ASSERT_EQ(p.markovian(p.initial_state()).size(), 2u);
}

TEST(ImcCompose, InteractiveSynchronises) {
  Imc a;
  a.add_states(2);
  a.add_interactive(0, "GO", 1);
  Imc b;
  b.add_states(2);
  b.add_interactive(0, "GO", 1);
  const std::vector<std::string> sync{"GO"};
  const Imc p = parallel(a, b, sync);
  EXPECT_EQ(p.num_states(), 2u);
  EXPECT_EQ(p.num_interactive(), 1u);
}

TEST(ImcCompose, HideAllKeepsExit) {
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "A", 1);
  m.add_interactive(1, "exit", 2);
  const Imc h = hide_all(m);
  EXPECT_TRUE(lts::ActionTable::is_tau(h.interactive(0)[0].action));
  EXPECT_TRUE(lts::ActionTable::is_exit(h.interactive(1)[0].action));
}

TEST(ImcCompose, MaximalProgressCutsRacesAtUnstableStates) {
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "i", 1);
  m.add_markovian(0, 5.0, 2);  // loses the race against tau
  m.add_markovian(1, 1.0, 2);  // stable state keeps its delay
  const Imc mp = maximal_progress(m);
  EXPECT_TRUE(mp.markovian(0).empty());
  EXPECT_EQ(mp.markovian(1).size(), 1u);
}

TEST(ImcCompose, MaximalProgressKeepsVisibleRaces) {
  // A visible action does not pre-empt delays (the environment may refuse it).
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "A", 1);
  m.add_markovian(0, 5.0, 2);
  const Imc mp = maximal_progress(m);
  EXPECT_EQ(mp.markovian(0).size(), 1u);
}

TEST(ImcCompose, TrimDropsUnreachable) {
  Imc m;
  m.add_states(3);
  m.add_markovian(0, 1.0, 0);
  m.add_interactive(1, "A", 2);  // unreachable
  const Imc t = trim(m);
  EXPECT_EQ(t.num_states(), 1u);
  EXPECT_EQ(t.num_interactive(), 0u);
}

// --- CTMC extraction -----------------------------------------------------------------

TEST(Extract, PureMarkovianIsIdentity) {
  Imc m;
  m.add_states(2);
  m.add_markovian(0, 2.0, 1, "go");
  m.add_markovian(1, 1.0, 0);
  const CtmcExtraction e = to_ctmc(m);
  EXPECT_EQ(e.ctmc.num_states(), 2u);
  EXPECT_EQ(e.ctmc.num_transitions(), 2u);
  EXPECT_EQ(e.imc_state_of[0], 0u);
}

TEST(Extract, VanishingStateEliminated) {
  // 0 -r-> 1 -tau-> 2: the tau state vanishes; CTMC is 0 -r-> 2.
  Imc m;
  m.add_states(3);
  m.add_markovian(0, 3.0, 1, "hop");
  m.add_interactive(1, "i", 2);
  const CtmcExtraction e = to_ctmc(m);
  EXPECT_EQ(e.ctmc.num_states(), 2u);  // states 0 and 2
  ASSERT_EQ(e.ctmc.num_transitions(), 1u);
  EXPECT_DOUBLE_EQ(e.ctmc.transitions()[0].rate, 3.0);
  EXPECT_EQ(e.ctmc.transitions()[0].label, "hop");
}

TEST(Extract, NondeterminismRejectedByDefault) {
  Imc m;
  m.add_states(4);
  m.add_markovian(0, 1.0, 1);
  m.add_interactive(1, "i", 2);
  m.add_interactive(1, "i", 3);
  EXPECT_THROW((void)to_ctmc(m), NondeterminismError);
}

TEST(Extract, UniformPolicySplitsMass) {
  Imc m;
  m.add_states(4);
  m.add_markovian(0, 2.0, 1);
  m.add_interactive(1, "i", 2);
  m.add_interactive(1, "i", 3);
  const CtmcExtraction e = to_ctmc(m, NondetPolicy::kUniform);
  // 0 -1-> 2 and 0 -1-> 3 (rate 2 split uniformly).
  EXPECT_EQ(e.ctmc.num_transitions(), 2u);
  for (const auto& t : e.ctmc.transitions()) {
    EXPECT_DOUBLE_EQ(t.rate, 1.0);
  }
}

TEST(Extract, InteractiveCycleIsTimelock) {
  Imc m;
  m.add_states(3);
  m.add_markovian(0, 1.0, 1);
  m.add_interactive(1, "i", 2);
  m.add_interactive(2, "i", 1);
  EXPECT_THROW((void)to_ctmc(m), TimelockError);
}

TEST(Extract, InitialStateResolved) {
  // Initial state is vanishing: initial distribution lands on tangibles.
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "i", 1);
  m.add_markovian(1, 1.0, 2);
  const CtmcExtraction e = to_ctmc(m);
  const auto pi0 = e.ctmc.initial_distribution();
  EXPECT_DOUBLE_EQ(pi0[0], 1.0);  // ctmc state 0 = imc state 1
  EXPECT_EQ(e.imc_state_of[0], 1u);
}

TEST(Extract, ChainOfVanishingStates) {
  Imc m;
  m.add_states(4);
  m.add_markovian(0, 4.0, 1);
  m.add_interactive(1, "i", 2);
  m.add_interactive(2, "i", 3);
  const CtmcExtraction e = to_ctmc(m);
  ASSERT_EQ(e.ctmc.num_transitions(), 1u);
  EXPECT_DOUBLE_EQ(e.ctmc.transitions()[0].rate, 4.0);
}

// --- lumping -----------------------------------------------------------------------

TEST(Lump, AggregatesParallelRates) {
  // Two rate-1 transitions into bisimilar states lump into rate 2.
  Imc m;
  m.add_states(3);
  m.add_markovian(0, 1.0, 1);
  m.add_markovian(0, 1.0, 2);
  const auto r = minimize_imc(m);
  EXPECT_EQ(r.quotient.num_states(), 2u);
  ASSERT_EQ(r.quotient.markovian(r.quotient.initial_state()).size(), 1u);
  EXPECT_DOUBLE_EQ(r.quotient.markovian(r.quotient.initial_state())[0].rate,
                   2.0);
}

TEST(Lump, StrongDistinguishesRates) {
  Imc m;
  m.add_states(3);
  m.add_markovian(0, 1.0, 2);
  m.add_markovian(1, 2.0, 2);
  const auto p = lump_strong(m);
  EXPECT_NE(p.block_of(0), p.block_of(1));
}

TEST(Lump, StrongMergesEqualRates) {
  Imc m;
  m.add_states(4);
  m.add_markovian(0, 1.5, 2);
  m.add_markovian(1, 1.5, 3);
  const auto p = lump_strong(m);
  EXPECT_EQ(p.block_of(0), p.block_of(1));
  EXPECT_EQ(p.block_of(2), p.block_of(3));
}

TEST(Lump, BranchingCollapsesInertTau) {
  // 0 -tau-> 1, 1 -r-> 2: after lumping, 0 ~ 1 (the tau takes no time).
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "i", 1);
  m.add_markovian(1, 2.0, 2);
  const auto r = minimize_imc(m);
  EXPECT_EQ(r.partition.block_of(0), r.partition.block_of(1));
  EXPECT_EQ(r.quotient.num_states(), 2u);
  // The quotient is now a pure CTMC.
  const CtmcExtraction e = to_ctmc(r.quotient);
  EXPECT_EQ(e.ctmc.num_states(), 2u);
  EXPECT_DOUBLE_EQ(e.ctmc.transitions()[0].rate, 2.0);
}

TEST(Lump, VisibleActionsBlockMerging) {
  Imc m;
  m.add_states(3);
  m.add_interactive(0, "A", 2);
  m.add_interactive(1, "B", 2);
  const auto p = lump_strong(m);
  EXPECT_NE(p.block_of(0), p.block_of(1));
}

TEST(Lump, InitialPartitionRespected) {
  // Identical states forced apart by a reward-compatible initial partition.
  Imc m;
  m.add_states(2);
  m.add_markovian(0, 1.0, 0);
  m.add_markovian(1, 1.0, 1);
  const bisim::Partition same(2);
  EXPECT_EQ(lump_strong(m, same).num_blocks(), 1u);
  const bisim::Partition split({0, 1}, 2);
  EXPECT_EQ(lump_strong(m, split).num_blocks(), 2u);
}

TEST(Lump, QuotientPreservesSteadyState) {
  // A symmetric 4-state chain and its 2-state lump have matching measures.
  Imc m;
  m.add_states(4);
  // Two "up" states {0,1} and two "down" states {2,3}, symmetric rates.
  m.add_markovian(0, 1.0, 2, "down");
  m.add_markovian(1, 1.0, 3, "down");
  m.add_markovian(2, 3.0, 0, "up");
  m.add_markovian(3, 3.0, 1, "up");
  const auto lumped = minimize_imc(m);
  EXPECT_EQ(lumped.quotient.num_states(), 2u);
  const auto full = to_ctmc(m);
  const auto small = to_ctmc(lumped.quotient);
  const auto pi_full = markov::steady_state(full.ctmc);
  const auto pi_small = markov::steady_state(small.ctmc);
  EXPECT_NEAR(markov::throughput(full.ctmc, pi_full, "down"),
              markov::throughput(small.ctmc, pi_small, "down"), 1e-9);
}

TEST(Lump, ErlangChainDoesNotCollapse) {
  // Distinct stages of an Erlang chain are NOT lumpable (different time to
  // absorption).
  Imc m;
  m.add_states(4);
  m.add_markovian(0, 1.0, 1);
  m.add_markovian(1, 1.0, 2);
  m.add_markovian(2, 1.0, 3);
  const auto p = lump_branching(m);
  EXPECT_EQ(p.num_blocks(), 4u);
}

}  // namespace
