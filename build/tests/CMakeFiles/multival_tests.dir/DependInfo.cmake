
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bisim_test.cpp" "tests/CMakeFiles/multival_tests.dir/bisim_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/bisim_test.cpp.o.d"
  "/root/repo/tests/casestudy_ext_test.cpp" "tests/CMakeFiles/multival_tests.dir/casestudy_ext_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/casestudy_ext_test.cpp.o.d"
  "/root/repo/tests/coherence_n_test.cpp" "tests/CMakeFiles/multival_tests.dir/coherence_n_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/coherence_n_test.cpp.o.d"
  "/root/repo/tests/dtmc_test.cpp" "tests/CMakeFiles/multival_tests.dir/dtmc_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/dtmc_test.cpp.o.d"
  "/root/repo/tests/edgecase_test.cpp" "tests/CMakeFiles/multival_tests.dir/edgecase_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/edgecase_test.cpp.o.d"
  "/root/repo/tests/endtoend_test.cpp" "tests/CMakeFiles/multival_tests.dir/endtoend_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/endtoend_test.cpp.o.d"
  "/root/repo/tests/fame_test.cpp" "tests/CMakeFiles/multival_tests.dir/fame_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/fame_test.cpp.o.d"
  "/root/repo/tests/flow_test.cpp" "tests/CMakeFiles/multival_tests.dir/flow_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/flow_test.cpp.o.d"
  "/root/repo/tests/imc_test.cpp" "tests/CMakeFiles/multival_tests.dir/imc_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/imc_test.cpp.o.d"
  "/root/repo/tests/io_rewards_test.cpp" "tests/CMakeFiles/multival_tests.dir/io_rewards_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/io_rewards_test.cpp.o.d"
  "/root/repo/tests/lts_test.cpp" "tests/CMakeFiles/multival_tests.dir/lts_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/lts_test.cpp.o.d"
  "/root/repo/tests/markov_test.cpp" "tests/CMakeFiles/multival_tests.dir/markov_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/markov_test.cpp.o.d"
  "/root/repo/tests/mc_test.cpp" "tests/CMakeFiles/multival_tests.dir/mc_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/mc_test.cpp.o.d"
  "/root/repo/tests/mc_tools_test.cpp" "tests/CMakeFiles/multival_tests.dir/mc_tools_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/mc_tools_test.cpp.o.d"
  "/root/repo/tests/noc_test.cpp" "tests/CMakeFiles/multival_tests.dir/noc_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/noc_test.cpp.o.d"
  "/root/repo/tests/phase_test.cpp" "tests/CMakeFiles/multival_tests.dir/phase_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/phase_test.cpp.o.d"
  "/root/repo/tests/proc_parser_test.cpp" "tests/CMakeFiles/multival_tests.dir/proc_parser_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/proc_parser_test.cpp.o.d"
  "/root/repo/tests/proc_test.cpp" "tests/CMakeFiles/multival_tests.dir/proc_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/proc_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/multival_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/regression_test.cpp" "tests/CMakeFiles/multival_tests.dir/regression_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/regression_test.cpp.o.d"
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/multival_tests.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/xstream_test.cpp" "tests/CMakeFiles/multival_tests.dir/xstream_test.cpp.o" "gcc" "tests/CMakeFiles/multival_tests.dir/xstream_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/multival.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
