# Empty compiler generated dependencies file for multival_tests.
# This may be replaced when dependencies are built.
