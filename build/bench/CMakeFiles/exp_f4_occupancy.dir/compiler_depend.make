# Empty compiler generated dependencies file for exp_f4_occupancy.
# This may be replaced when dependencies are built.
