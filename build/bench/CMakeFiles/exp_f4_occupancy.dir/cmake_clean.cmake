file(REMOVE_RECURSE
  "CMakeFiles/exp_f4_occupancy.dir/exp_f4_occupancy.cpp.o"
  "CMakeFiles/exp_f4_occupancy.dir/exp_f4_occupancy.cpp.o.d"
  "exp_f4_occupancy"
  "exp_f4_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f4_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
