file(REMOVE_RECURSE
  "CMakeFiles/exp_t2_minimization.dir/exp_t2_minimization.cpp.o"
  "CMakeFiles/exp_t2_minimization.dir/exp_t2_minimization.cpp.o.d"
  "exp_t2_minimization"
  "exp_t2_minimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t2_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
