# Empty dependencies file for exp_t2_minimization.
# This may be replaced when dependencies are built.
