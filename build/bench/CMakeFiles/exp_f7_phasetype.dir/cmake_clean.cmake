file(REMOVE_RECURSE
  "CMakeFiles/exp_f7_phasetype.dir/exp_f7_phasetype.cpp.o"
  "CMakeFiles/exp_f7_phasetype.dir/exp_f7_phasetype.cpp.o.d"
  "exp_f7_phasetype"
  "exp_f7_phasetype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f7_phasetype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
