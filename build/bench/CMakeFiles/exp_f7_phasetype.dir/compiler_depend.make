# Empty compiler generated dependencies file for exp_f7_phasetype.
# This may be replaced when dependencies are built.
