file(REMOVE_RECURSE
  "CMakeFiles/exp_t1_statespace.dir/exp_t1_statespace.cpp.o"
  "CMakeFiles/exp_t1_statespace.dir/exp_t1_statespace.cpp.o.d"
  "exp_t1_statespace"
  "exp_t1_statespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t1_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
