file(REMOVE_RECURSE
  "CMakeFiles/bench_markov.dir/bench_markov.cpp.o"
  "CMakeFiles/bench_markov.dir/bench_markov.cpp.o.d"
  "bench_markov"
  "bench_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
