file(REMOVE_RECURSE
  "CMakeFiles/bench_bisim.dir/bench_bisim.cpp.o"
  "CMakeFiles/bench_bisim.dir/bench_bisim.cpp.o.d"
  "bench_bisim"
  "bench_bisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
