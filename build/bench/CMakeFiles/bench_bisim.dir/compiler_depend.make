# Empty compiler generated dependencies file for bench_bisim.
# This may be replaced when dependencies are built.
