file(REMOVE_RECURSE
  "CMakeFiles/exp_t10_nondeterminism.dir/exp_t10_nondeterminism.cpp.o"
  "CMakeFiles/exp_t10_nondeterminism.dir/exp_t10_nondeterminism.cpp.o.d"
  "exp_t10_nondeterminism"
  "exp_t10_nondeterminism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t10_nondeterminism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
