# Empty compiler generated dependencies file for exp_t10_nondeterminism.
# This may be replaced when dependencies are built.
