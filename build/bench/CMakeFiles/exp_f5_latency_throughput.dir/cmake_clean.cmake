file(REMOVE_RECURSE
  "CMakeFiles/exp_f5_latency_throughput.dir/exp_f5_latency_throughput.cpp.o"
  "CMakeFiles/exp_f5_latency_throughput.dir/exp_f5_latency_throughput.cpp.o.d"
  "exp_f5_latency_throughput"
  "exp_f5_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f5_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
