# Empty dependencies file for exp_f5_latency_throughput.
# This may be replaced when dependencies are built.
