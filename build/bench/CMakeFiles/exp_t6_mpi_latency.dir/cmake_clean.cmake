file(REMOVE_RECURSE
  "CMakeFiles/exp_t6_mpi_latency.dir/exp_t6_mpi_latency.cpp.o"
  "CMakeFiles/exp_t6_mpi_latency.dir/exp_t6_mpi_latency.cpp.o.d"
  "exp_t6_mpi_latency"
  "exp_t6_mpi_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t6_mpi_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
