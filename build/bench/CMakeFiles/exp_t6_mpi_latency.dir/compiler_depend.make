# Empty compiler generated dependencies file for exp_t6_mpi_latency.
# This may be replaced when dependencies are built.
