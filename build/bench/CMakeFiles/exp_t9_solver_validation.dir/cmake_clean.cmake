file(REMOVE_RECURSE
  "CMakeFiles/exp_t9_solver_validation.dir/exp_t9_solver_validation.cpp.o"
  "CMakeFiles/exp_t9_solver_validation.dir/exp_t9_solver_validation.cpp.o.d"
  "exp_t9_solver_validation"
  "exp_t9_solver_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t9_solver_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
