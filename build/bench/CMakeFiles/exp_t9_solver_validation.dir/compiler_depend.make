# Empty compiler generated dependencies file for exp_t9_solver_validation.
# This may be replaced when dependencies are built.
