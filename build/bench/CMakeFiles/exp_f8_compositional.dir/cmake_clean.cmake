file(REMOVE_RECURSE
  "CMakeFiles/exp_f8_compositional.dir/exp_f8_compositional.cpp.o"
  "CMakeFiles/exp_f8_compositional.dir/exp_f8_compositional.cpp.o.d"
  "exp_f8_compositional"
  "exp_f8_compositional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f8_compositional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
