# Empty compiler generated dependencies file for exp_f8_compositional.
# This may be replaced when dependencies are built.
