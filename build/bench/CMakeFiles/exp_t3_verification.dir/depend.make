# Empty dependencies file for exp_t3_verification.
# This may be replaced when dependencies are built.
