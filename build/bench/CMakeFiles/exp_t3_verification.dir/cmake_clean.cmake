file(REMOVE_RECURSE
  "CMakeFiles/exp_t3_verification.dir/exp_t3_verification.cpp.o"
  "CMakeFiles/exp_t3_verification.dir/exp_t3_verification.cpp.o.d"
  "exp_t3_verification"
  "exp_t3_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t3_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
