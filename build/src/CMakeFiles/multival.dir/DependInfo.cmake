
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bisim/branching.cpp" "src/CMakeFiles/multival.dir/bisim/branching.cpp.o" "gcc" "src/CMakeFiles/multival.dir/bisim/branching.cpp.o.d"
  "/root/repo/src/bisim/equivalence.cpp" "src/CMakeFiles/multival.dir/bisim/equivalence.cpp.o" "gcc" "src/CMakeFiles/multival.dir/bisim/equivalence.cpp.o.d"
  "/root/repo/src/bisim/partition.cpp" "src/CMakeFiles/multival.dir/bisim/partition.cpp.o" "gcc" "src/CMakeFiles/multival.dir/bisim/partition.cpp.o.d"
  "/root/repo/src/bisim/strong.cpp" "src/CMakeFiles/multival.dir/bisim/strong.cpp.o" "gcc" "src/CMakeFiles/multival.dir/bisim/strong.cpp.o.d"
  "/root/repo/src/bisim/trace.cpp" "src/CMakeFiles/multival.dir/bisim/trace.cpp.o" "gcc" "src/CMakeFiles/multival.dir/bisim/trace.cpp.o.d"
  "/root/repo/src/compose/pipeline.cpp" "src/CMakeFiles/multival.dir/compose/pipeline.cpp.o" "gcc" "src/CMakeFiles/multival.dir/compose/pipeline.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/CMakeFiles/multival.dir/core/flow.cpp.o" "gcc" "src/CMakeFiles/multival.dir/core/flow.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/multival.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/multival.dir/core/report.cpp.o.d"
  "/root/repo/src/fame/coherence.cpp" "src/CMakeFiles/multival.dir/fame/coherence.cpp.o" "gcc" "src/CMakeFiles/multival.dir/fame/coherence.cpp.o.d"
  "/root/repo/src/fame/coherence_n.cpp" "src/CMakeFiles/multival.dir/fame/coherence_n.cpp.o" "gcc" "src/CMakeFiles/multival.dir/fame/coherence_n.cpp.o.d"
  "/root/repo/src/fame/mpi.cpp" "src/CMakeFiles/multival.dir/fame/mpi.cpp.o" "gcc" "src/CMakeFiles/multival.dir/fame/mpi.cpp.o.d"
  "/root/repo/src/fame/topology.cpp" "src/CMakeFiles/multival.dir/fame/topology.cpp.o" "gcc" "src/CMakeFiles/multival.dir/fame/topology.cpp.o.d"
  "/root/repo/src/imc/compose.cpp" "src/CMakeFiles/multival.dir/imc/compose.cpp.o" "gcc" "src/CMakeFiles/multival.dir/imc/compose.cpp.o.d"
  "/root/repo/src/imc/imc.cpp" "src/CMakeFiles/multival.dir/imc/imc.cpp.o" "gcc" "src/CMakeFiles/multival.dir/imc/imc.cpp.o.d"
  "/root/repo/src/imc/imc_io.cpp" "src/CMakeFiles/multival.dir/imc/imc_io.cpp.o" "gcc" "src/CMakeFiles/multival.dir/imc/imc_io.cpp.o.d"
  "/root/repo/src/imc/lump.cpp" "src/CMakeFiles/multival.dir/imc/lump.cpp.o" "gcc" "src/CMakeFiles/multival.dir/imc/lump.cpp.o.d"
  "/root/repo/src/imc/scheduler.cpp" "src/CMakeFiles/multival.dir/imc/scheduler.cpp.o" "gcc" "src/CMakeFiles/multival.dir/imc/scheduler.cpp.o.d"
  "/root/repo/src/lts/action_table.cpp" "src/CMakeFiles/multival.dir/lts/action_table.cpp.o" "gcc" "src/CMakeFiles/multival.dir/lts/action_table.cpp.o.d"
  "/root/repo/src/lts/analysis.cpp" "src/CMakeFiles/multival.dir/lts/analysis.cpp.o" "gcc" "src/CMakeFiles/multival.dir/lts/analysis.cpp.o.d"
  "/root/repo/src/lts/lts.cpp" "src/CMakeFiles/multival.dir/lts/lts.cpp.o" "gcc" "src/CMakeFiles/multival.dir/lts/lts.cpp.o.d"
  "/root/repo/src/lts/lts_io.cpp" "src/CMakeFiles/multival.dir/lts/lts_io.cpp.o" "gcc" "src/CMakeFiles/multival.dir/lts/lts_io.cpp.o.d"
  "/root/repo/src/lts/product.cpp" "src/CMakeFiles/multival.dir/lts/product.cpp.o" "gcc" "src/CMakeFiles/multival.dir/lts/product.cpp.o.d"
  "/root/repo/src/markov/absorption.cpp" "src/CMakeFiles/multival.dir/markov/absorption.cpp.o" "gcc" "src/CMakeFiles/multival.dir/markov/absorption.cpp.o.d"
  "/root/repo/src/markov/ctmc.cpp" "src/CMakeFiles/multival.dir/markov/ctmc.cpp.o" "gcc" "src/CMakeFiles/multival.dir/markov/ctmc.cpp.o.d"
  "/root/repo/src/markov/dtmc.cpp" "src/CMakeFiles/multival.dir/markov/dtmc.cpp.o" "gcc" "src/CMakeFiles/multival.dir/markov/dtmc.cpp.o.d"
  "/root/repo/src/markov/rewards.cpp" "src/CMakeFiles/multival.dir/markov/rewards.cpp.o" "gcc" "src/CMakeFiles/multival.dir/markov/rewards.cpp.o.d"
  "/root/repo/src/markov/sparse.cpp" "src/CMakeFiles/multival.dir/markov/sparse.cpp.o" "gcc" "src/CMakeFiles/multival.dir/markov/sparse.cpp.o.d"
  "/root/repo/src/markov/steady.cpp" "src/CMakeFiles/multival.dir/markov/steady.cpp.o" "gcc" "src/CMakeFiles/multival.dir/markov/steady.cpp.o.d"
  "/root/repo/src/markov/transient.cpp" "src/CMakeFiles/multival.dir/markov/transient.cpp.o" "gcc" "src/CMakeFiles/multival.dir/markov/transient.cpp.o.d"
  "/root/repo/src/mc/diagnostic.cpp" "src/CMakeFiles/multival.dir/mc/diagnostic.cpp.o" "gcc" "src/CMakeFiles/multival.dir/mc/diagnostic.cpp.o.d"
  "/root/repo/src/mc/evaluator.cpp" "src/CMakeFiles/multival.dir/mc/evaluator.cpp.o" "gcc" "src/CMakeFiles/multival.dir/mc/evaluator.cpp.o.d"
  "/root/repo/src/mc/formula.cpp" "src/CMakeFiles/multival.dir/mc/formula.cpp.o" "gcc" "src/CMakeFiles/multival.dir/mc/formula.cpp.o.d"
  "/root/repo/src/mc/parser.cpp" "src/CMakeFiles/multival.dir/mc/parser.cpp.o" "gcc" "src/CMakeFiles/multival.dir/mc/parser.cpp.o.d"
  "/root/repo/src/mc/properties.cpp" "src/CMakeFiles/multival.dir/mc/properties.cpp.o" "gcc" "src/CMakeFiles/multival.dir/mc/properties.cpp.o.d"
  "/root/repo/src/noc/mesh.cpp" "src/CMakeFiles/multival.dir/noc/mesh.cpp.o" "gcc" "src/CMakeFiles/multival.dir/noc/mesh.cpp.o.d"
  "/root/repo/src/noc/perf.cpp" "src/CMakeFiles/multival.dir/noc/perf.cpp.o" "gcc" "src/CMakeFiles/multival.dir/noc/perf.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/CMakeFiles/multival.dir/noc/router.cpp.o" "gcc" "src/CMakeFiles/multival.dir/noc/router.cpp.o.d"
  "/root/repo/src/phase/fit.cpp" "src/CMakeFiles/multival.dir/phase/fit.cpp.o" "gcc" "src/CMakeFiles/multival.dir/phase/fit.cpp.o.d"
  "/root/repo/src/phase/phase_type.cpp" "src/CMakeFiles/multival.dir/phase/phase_type.cpp.o" "gcc" "src/CMakeFiles/multival.dir/phase/phase_type.cpp.o.d"
  "/root/repo/src/proc/expr.cpp" "src/CMakeFiles/multival.dir/proc/expr.cpp.o" "gcc" "src/CMakeFiles/multival.dir/proc/expr.cpp.o.d"
  "/root/repo/src/proc/generator.cpp" "src/CMakeFiles/multival.dir/proc/generator.cpp.o" "gcc" "src/CMakeFiles/multival.dir/proc/generator.cpp.o.d"
  "/root/repo/src/proc/parser.cpp" "src/CMakeFiles/multival.dir/proc/parser.cpp.o" "gcc" "src/CMakeFiles/multival.dir/proc/parser.cpp.o.d"
  "/root/repo/src/proc/process.cpp" "src/CMakeFiles/multival.dir/proc/process.cpp.o" "gcc" "src/CMakeFiles/multival.dir/proc/process.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/multival.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/multival.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/xstream/perf.cpp" "src/CMakeFiles/multival.dir/xstream/perf.cpp.o" "gcc" "src/CMakeFiles/multival.dir/xstream/perf.cpp.o.d"
  "/root/repo/src/xstream/queue_model.cpp" "src/CMakeFiles/multival.dir/xstream/queue_model.cpp.o" "gcc" "src/CMakeFiles/multival.dir/xstream/queue_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
