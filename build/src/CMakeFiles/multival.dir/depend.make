# Empty dependencies file for multival.
# This may be replaced when dependencies are built.
