file(REMOVE_RECURSE
  "libmultival.a"
)
