# Empty compiler generated dependencies file for fame_mpi.
# This may be replaced when dependencies are built.
