file(REMOVE_RECURSE
  "CMakeFiles/fame_mpi.dir/fame_mpi.cpp.o"
  "CMakeFiles/fame_mpi.dir/fame_mpi.cpp.o.d"
  "fame_mpi"
  "fame_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fame_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
