file(REMOVE_RECURSE
  "CMakeFiles/xstream_pipeline.dir/xstream_pipeline.cpp.o"
  "CMakeFiles/xstream_pipeline.dir/xstream_pipeline.cpp.o.d"
  "xstream_pipeline"
  "xstream_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xstream_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
