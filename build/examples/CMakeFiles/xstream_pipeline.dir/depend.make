# Empty dependencies file for xstream_pipeline.
# This may be replaced when dependencies are built.
