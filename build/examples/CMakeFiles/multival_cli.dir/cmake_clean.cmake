file(REMOVE_RECURSE
  "CMakeFiles/multival_cli.dir/multival_cli.cpp.o"
  "CMakeFiles/multival_cli.dir/multival_cli.cpp.o.d"
  "multival_cli"
  "multival_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multival_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
