# Empty compiler generated dependencies file for multival_cli.
# This may be replaced when dependencies are built.
