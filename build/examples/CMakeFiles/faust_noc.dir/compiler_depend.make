# Empty compiler generated dependencies file for faust_noc.
# This may be replaced when dependencies are built.
