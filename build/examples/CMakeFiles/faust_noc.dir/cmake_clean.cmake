file(REMOVE_RECURSE
  "CMakeFiles/faust_noc.dir/faust_noc.cpp.o"
  "CMakeFiles/faust_noc.dir/faust_noc.cpp.o.d"
  "faust_noc"
  "faust_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faust_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
