// FAME2 end-to-end: verify the cache-coherence protocol, then predict the
// MPI ping-pong latency across topology x protocol x MPI-implementation
// design points — the Bull use of the Multival flow.
#include <iostream>

#include "core/report.hpp"
#include "fame/coherence.hpp"
#include "fame/mpi.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"

int main() {
  using namespace multival;
  using namespace multival::fame;

  // -- protocol verification ------------------------------------------------
  core::Table verif("FAME2 coherence: functional verification",
                    {"protocol", "states", "SWMR holds", "deadlock-free"});
  for (const Protocol proto : {Protocol::kMsi, Protocol::kMesi}) {
    const lts::Lts l = coherence_system_lts(proto);
    verif.add_row({to_string(proto), std::to_string(l.num_states()),
                   mc::check(l, mc::never(mc::act("ERR*"))) ? "yes" : "NO",
                   mc::check(l, mc::deadlock_freedom()) ? "yes" : "NO"});
  }
  verif.print(std::cout);

  // -- MPI ping-pong latency across the design space -------------------------
  core::Table table("FAME2: MPI ping-pong round latency",
                    {"topology", "coherence", "MPI impl", "round latency",
                     "CTMC states"});
  for (const Topology topo :
       {Topology::kBus, Topology::kRing, Topology::kCrossbar}) {
    for (const Protocol proto : {Protocol::kMsi, Protocol::kMesi}) {
      for (const MpiImpl impl : {MpiImpl::kEager, MpiImpl::kRendezvous}) {
        PingPongConfig cfg;
        cfg.topology = topo;
        cfg.protocol = proto;
        cfg.impl = impl;
        cfg.rounds = 4;
        const PingPongResult r = pingpong_latency(cfg);
        table.add_row({to_string(topo), to_string(proto), to_string(impl),
                       core::fmt(r.round_latency),
                       std::to_string(r.ctmc_states)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "(expected shape: crossbar < ring < bus; eager < rendezvous;"
               " MESI <= MSI)\n";
  return 0;
}
