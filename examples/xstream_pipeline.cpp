// xSTream end-to-end: verify the credit-protocol virtual queue (catching
// the two seeded defects), then predict occupancy / throughput / latency —
// the STMicroelectronics use of the Multival flow.
#include <iostream>

#include "bisim/equivalence.hpp"
#include "core/report.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "xstream/perf.hpp"
#include "xstream/queue_model.hpp"

int main() {
  using namespace multival;
  using namespace multival::xstream;

  // -- functional verification of the three protocol variants ------------
  core::Table verdicts("xSTream virtual queue: functional verification",
                       {"variant", "states", "deadlock-free", "no loss",
                        "== FIFO spec"});
  for (const QueueVariant v : {QueueVariant::kCorrect,
                               QueueVariant::kLostCredit,
                               QueueVariant::kEagerCredit}) {
    QueueConfig cfg;
    cfg.variant = v;
    const lts::Lts l = virtual_queue_lts(cfg);
    const bool df = mc::check(l, mc::deadlock_freedom());
    const bool nl = mc::check(l, mc::never(mc::act("LOSE*")));
    const bool eq = bisim::equivalent(l, reference_fifo_lts(cfg),
                                      bisim::Equivalence::kBranching);
    verdicts.add_row({to_string(v), std::to_string(l.num_states()),
                      df ? "yes" : "NO", nl ? "yes" : "NO",
                      eq ? "yes" : "NO"});
  }
  verdicts.print(std::cout);

  // -- performance prediction for the correct queue ----------------------
  core::Table perf("xSTream virtual queue: performance vs load",
                   {"push rate", "mean occupancy", "throughput",
                    "mean latency", "P[occ=0]", "P[full]"});
  for (const double lambda : {0.5, 1.0, 2.0, 4.0}) {
    QueuePerfParams p;
    p.push_rate = lambda;
    p.pop_rate = 2.0;
    const QueuePerfResult r = analyze_virtual_queue(p);
    perf.add_row({core::fmt(lambda, 1), core::fmt(r.mean_occupancy),
                  core::fmt(r.throughput), core::fmt(r.mean_latency),
                  core::fmt(r.occupancy_distribution.front()),
                  core::fmt(r.occupancy_distribution.back())});
  }
  perf.print(std::cout);
  return 0;
}
