// Quickstart: the whole Multival flow on a ten-line model.
//
//   1. describe a system in the LOTOS-like process calculus,
//   2. generate its LTS and verify functional properties,
//   3. minimise it modulo branching bisimulation,
//   4. decorate it with exponential delays, close the IMC, and
//   5. compute steady-state throughput and latency.
//
// The system: a machine that fetches a job, works on it, and ships it.
#include <iostream>

#include "bisim/equivalence.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "markov/steady.hpp"
#include "mc/properties.hpp"
#include "proc/generator.hpp"

int main() {
  using namespace multival;
  using namespace multival::proc;

  // -- 1. model ---------------------------------------------------------
  Program program;
  program.define("Machine", {},
                 prefix("FETCH", prefix("WORK", prefix("SHIP",
                        call("Machine")))));
  // Two machines sharing the FETCH gate with a dispatcher.
  program.define("Dispatcher", {}, prefix("FETCH", call("Dispatcher")));
  program.define("Shop", {},
                 par(interleaving(call("Machine"), call("Machine")),
                     {"FETCH"}, call("Dispatcher")));

  const lts::Lts shop = generate(program, "Shop");
  std::cout << "state space: " << shop.num_states() << " states, "
            << shop.num_transitions() << " transitions\n";

  // -- 2. verify --------------------------------------------------------
  const core::VerificationReport report = core::verify(
      shop, {{"can always ship",
              mc::always(mc::box(mc::act("WORK"), mc::can_do(mc::act("SHIP"))))}});
  std::cout << report.to_string();

  // -- 3. minimise ------------------------------------------------------
  const auto min = bisim::minimize(shop, bisim::Equivalence::kBranching);
  std::cout << "branching quotient: " << min.quotient.num_states()
            << " states\n";

  // -- 4. decorate + close ---------------------------------------------
  const imc::Imc timed = core::decorate_with_rates(
      shop, {{"FETCH", 3.0}, {"WORK", 1.0}, {"SHIP", 5.0}});
  const core::ClosedModel closed = core::close_model(timed);
  std::cout << "CTMC: " << closed.ctmc.num_states() << " states (from "
            << closed.stats.imc_states << " IMC states)\n";

  // -- 5. solve ----------------------------------------------------------
  const auto pi = markov::steady_state(closed.ctmc);
  const double ship_rate = markov::throughput(closed.ctmc, pi, "SHIP*");
  std::cout << "steady-state shipping throughput: " << core::fmt(ship_rate)
            << " jobs/time\n";
  std::cout << "mean time per shipped job:        "
            << core::fmt(1.0 / ship_rate) << "\n";
  return report.all_hold() ? 0 : 1;
}
