// Shared command-line validation for the multival binaries: one place for
// the numeric/flag parsing contract that tests/cli_checks.cmake pins down
// (malformed invocations exit nonzero with "usage:" on stderr), so every
// subcommand and bench harness rejects bad input identically.
#pragma once

#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>

namespace multival::cli {

/// Malformed command line (unknown flag, bad number): main prints usage to
/// stderr and exits nonzero, the same path as an unknown subcommand.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[nodiscard]] inline long parse_long(const std::string& text,
                                     const char* what) {
  long v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw UsageError(std::string("bad ") + what + ": '" + text + "'");
  }
  return v;
}

[[nodiscard]] inline unsigned parse_unsigned(const std::string& text,
                                             const char* what) {
  const long v = parse_long(text, what);
  if (v < 0) {
    throw UsageError(std::string("bad ") + what + ": '" + text + "'");
  }
  return static_cast<unsigned>(v);
}

[[nodiscard]] inline double parse_double(const std::string& text,
                                         const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size() || !std::isfinite(v)) {
      throw std::invalid_argument(text);
    }
    return v;
  } catch (const std::exception&) {
    throw UsageError(std::string("bad ") + what + ": '" + text + "'");
  }
}

[[nodiscard]] inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace multival::cli
