// multival_cli — command-line driver over Aldebaran (.aut) files, in the
// spirit of CADP's bcg_info / bcg_min / bisimulator / evaluator:
//
//   multival_cli info  <file.aut>
//   multival_cli min   <strong|weak|branching|divbranching> <in.aut> [out.aut]
//   multival_cli det   <in.aut> [out.aut]
//   multival_cli cmp   <strong|weak|branching|divbranching|trace> <a.aut> <b.aut>
//   multival_cli check <file.aut> '<mu-calculus formula>'
//   multival_cli deadlocks <file.aut>
//   multival_cli gen   <model.proc> <EntryProcess> [args...] [-o out.aut]
//   multival_cli explore <model.proc> <EntryProcess> [args...]
//       [--plan|--flat] [-j N] [--dfs] [--fp [bits]] [-o out.aut|out.mvl]
//       (default --plan: generate-minimise-compose through the planner;
//        --dfs/--fp imply --flat, the monolithic on-the-fly explorer)
//   multival_cli compose (--builtin <name> | <model.proc> <Entry>)
//       [--flat] [-j N] [-o out.aut|out.mvl]
//       (prints the composition plan, the per-step size table and the
//        byte-identity check against the flat reference pipeline)
//   multival_cli lint  <model.proc> [EntryProcess [args...]]
//                      [--json] [--strict] [--bounds [--budget N]]
//       (--bounds adds the MV040-MV042 static state-bound prediction;
//        --budget N flags components predicted above N states)
//   multival_cli lint  --imc <file.imc> | --builtin <name|all>
//                      [--json] [--strict]
//   multival_cli lint  --fixed-delay D [--error-bound EPS]   (MV020 advisory)
//   multival_cli solve <file.imc> [--stats] [--plan|--flat]
//       (aut with "rate r" labels; default --plan lumps the IMC by
//        stochastic branching bisimulation before solving)
//   multival_cli check-file <file.aut> <props.mcl>
//       props.mcl: one "name: formula" per line; '#' comments
//   multival_cli dot   <file.aut> [out.dot]
//   multival_cli serve --socket <path|host:port> [-j N] [--queue N]
//       [--deadline MS] [--cache-mb N] [--cache-dir DIR] [--admit N]
//       (--admit N rejects models over N states pre-queue, MV042)
//       (endpoints whose last ':'-field is a decimal port are TCP;
//        port 0 binds an ephemeral port, printed on startup)
//   multival_cli client --socket <endpoint> <ping|shutdown>
//   multival_cli client --socket <endpoint> stats [--json]
//   multival_cli client --socket <endpoint> reach <file.imc> [time-bound]
//   multival_cli client --socket <endpoint> bounds <file.imc>
//   multival_cli client --socket <endpoint> check <file.aut> '<formula>'
//   multival_cli client --socket <endpoint> throughput <file.imc>
//       <label-glob>
//   multival_cli dse [--spec <file> | --builtin <default|smoke>] [-j N]
//       [--socket EP[,EP...] [--retry-ms MS]] [--deadline MS] [--repeat N]
//       [--json PATH] [--csv PATH] [--no-timing] [--flat]
//       (a comma-separated --socket list routes probes over the replicas
//        by content hash — see serve::Router)
//   multival_cli xmas (<file.xmas> | --builtin <name> [--capacity N])
//       [--lint | --compile | --solve] [--items N] [--json] [--strict]
//       [--flat] [-o out.proc]
//       (--lint is the default: MV030-033 structural checks, zero states;
//        --compile prints the lowered proc program; --solve runs the
//        steady-state throughput probe, plus burst latency with --items)
#include <charconv>
#include <cmath>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "cli_util.hpp"

#include "analyze/analyze.hpp"
#include "analyze/bounds.hpp"
#include "compose/plan.hpp"
#include "dse/driver.hpp"
#include "dse/grid.hpp"
#include "bisim/equivalence.hpp"
#include "bisim/trace.hpp"
#include "fame/coherence.hpp"
#include "fame/coherence_n.hpp"
#include "lts/analysis.hpp"
#include "lts/lts_io.hpp"
#include "mc/diagnostic.hpp"
#include "mc/evaluator.hpp"
#include "mc/parser.hpp"
#include "core/flow.hpp"
#include "imc/imc_io.hpp"
#include "imc/lump.hpp"
#include "imc/scheduler.hpp"
#include "markov/absorption.hpp"
#include "markov/steady.hpp"
#include "noc/mesh.hpp"
#include "xstream/queue_model.hpp"
#include "core/report.hpp"
#include "explore/engine.hpp"
#include "explore/lts_stream.hpp"
#include "explore/oracle.hpp"
#include "proc/generator.hpp"
#include "proc/parser.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/solvers.hpp"
#include "xmas/compile.hpp"
#include "xmas/netlist.hpp"
#include "xmas/parser.hpp"

namespace {

using namespace multival;

using cli::UsageError;
using cli::parse_double;
using cli::parse_long;
using cli::parse_unsigned;
using cli::read_file;

lts::Lts load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return lts::read_aut(in);
}

void save(const lts::Lts& l, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  lts::write_aut(out, l);
}

bisim::Equivalence parse_equivalence(const std::string& name) {
  if (name == "strong") {
    return bisim::Equivalence::kStrong;
  }
  if (name == "weak") {
    return bisim::Equivalence::kWeak;
  }
  if (name == "branching") {
    return bisim::Equivalence::kBranching;
  }
  if (name == "divbranching") {
    return bisim::Equivalence::kDivergenceBranching;
  }
  throw std::runtime_error("unknown equivalence: " + name);
}

int cmd_info(const std::string& path) {
  const lts::Lts l = load(path);
  std::cout << path << ":\n"
            << "  states:       " << l.num_states() << "\n"
            << "  transitions:  " << l.num_transitions() << "\n"
            << "  labels:       " << l.actions().size() - 2 << " visible\n"
            << "  deadlocks:    " << lts::deadlock_states(l).size() << "\n"
            << "  tau cycles:   " << (lts::has_tau_cycle(l) ? "yes" : "no")
            << "\n"
            << "  unreachable:  " << lts::trim(l).removed_states << "\n";
  return 0;
}

int cmd_min(const std::string& equiv, const std::string& in,
            const std::string& out) {
  const lts::Lts l = load(in);
  const auto r = bisim::minimize(l, parse_equivalence(equiv));
  std::cout << in << ": " << l.num_states() << " -> "
            << r.quotient.num_states() << " states (" << equiv << ")\n";
  if (!out.empty()) {
    save(r.quotient, out);
    std::cout << "written to " << out << "\n";
  }
  return 0;
}

int cmd_det(const std::string& in, const std::string& out) {
  const lts::Lts l = load(in);
  const lts::Lts d = bisim::determinize(l);
  std::cout << in << ": " << l.num_states() << " -> " << d.num_states()
            << " deterministic states\n";
  if (!out.empty()) {
    save(d, out);
    std::cout << "written to " << out << "\n";
  }
  return 0;
}

int cmd_cmp(const std::string& equiv, const std::string& a,
            const std::string& b) {
  const lts::Lts la = load(a);
  const lts::Lts lb = load(b);
  const bool eq = equiv == "trace"
                      ? bisim::weak_trace_equivalent(la, lb)
                      : bisim::equivalent(la, lb, parse_equivalence(equiv));
  std::cout << (eq ? "TRUE" : "FALSE") << " (" << equiv << ")\n";
  return eq ? 0 : 1;
}

int cmd_check(const std::string& path, const std::string& formula_text) {
  const lts::Lts l = load(path);
  const mc::FormulaPtr f = mc::parse_formula(formula_text);
  const bool holds = mc::check(l, f);
  std::cout << (holds ? "TRUE" : "FALSE") << "  — " << f->to_string() << "\n";
  return holds ? 0 : 1;
}

int cmd_deadlocks(const std::string& path) {
  const lts::Lts l = load(path);
  const auto dead = lts::deadlock_states(l);
  if (dead.empty()) {
    std::cout << "no reachable deadlock\n";
    return 0;
  }
  std::cout << dead.size() << " reachable deadlock state(s)\n";
  const mc::Trace t = mc::deadlock_trace(l);
  std::cout << "shortest trace: " << t.to_string() << " (state "
            << t.final_state << ")\n";
  return 1;
}

int cmd_gen(int argc, char** argv) {
  // gen <model.proc> <Entry> [int args...] [-o out.aut]
  const std::string model_path = argv[2];
  const std::string entry = argv[3];
  std::vector<proc::Value> args;
  std::string out_path;
  for (int i = 4; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("gen: unknown flag " + a);
    } else {
      args.push_back(
          static_cast<proc::Value>(parse_long(a, "gen process argument")));
    }
  }
  const std::string text = read_file(model_path);
  const proc::Program program = proc::parse_program(text);
  const lts::Lts l = proc::generate(program, entry, args);
  std::cout << entry << ": " << l.num_states() << " states, "
            << l.num_transitions() << " transitions\n";
  if (!out_path.empty()) {
    save(l, out_path);
    std::cout << "written to " << out_path << "\n";
  } else {
    lts::write_aut(std::cout, l);
  }
  return 0;
}

void save_any(const lts::Lts& l, const std::string& out_path) {
  if (out_path.size() >= 4 &&
      out_path.compare(out_path.size() - 4, 4, ".mvl") == 0) {
    explore::save_lts_stream(out_path, l);
  } else {
    save(l, out_path);
  }
  std::cout << "written to " << out_path << "\n";
}

/// Prints a Plan's provenance: the rendered grammar, and the fallback
/// reason when the structure was not safely reassociable.
void print_plan(const compose::Plan& plan) {
  std::cout << "plan: " << plan.grammar << "\n";
  if (!plan.planned) {
    std::cout << "monolithic fallback: " << plan.fallback_reason << "\n";
  }
}

int cmd_explore(int argc, char** argv) {
  // explore <model.proc> <Entry> [int args...] [--plan|--flat] [-j N]
  //         [--dfs] [--fp [bits]] [-o out.aut|out.mvl]
  const std::string model_path = argv[2];
  const std::string entry = argv[3];
  std::vector<proc::Value> args;
  std::string out_path;
  explore::ExploreOptions opts;
  bool plan_requested = false;
  bool flat = false;  // --flat, or a flat-only flag (--dfs / --fp)
  for (int i = 4; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "-j" && i + 1 < argc) {
      opts.workers = parse_unsigned(argv[++i], "worker count");
    } else if (a == "--plan") {
      plan_requested = true;
    } else if (a == "--flat") {
      flat = true;
    } else if (a == "--dfs") {
      opts.order = explore::Order::kDfs;
      flat = true;
    } else if (a == "--fp") {
      opts.store = explore::StoreMode::kFingerprint;
      flat = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opts.fingerprint_bits = parse_unsigned(argv[++i], "fingerprint bits");
      }
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("explore: unknown flag " + a);
    } else {
      args.push_back(
          static_cast<proc::Value>(parse_long(a, "explore process argument")));
    }
  }
  if (plan_requested && flat) {
    throw UsageError("explore: --plan is incompatible with --flat/--dfs/--fp");
  }
  const std::string text = read_file(model_path);
  auto program = std::make_shared<const proc::Program>(
      proc::parse_program(text));
  if (!flat) {
    // Default: the planned generate-minimise-compose pipeline.  The result
    // is the canonical minimal LTS (divergence-preserving branching).
    std::vector<proc::ExprPtr> eargs;
    eargs.reserve(args.size());
    for (const proc::Value v : args) {
      eargs.push_back(proc::lit(v));
    }
    compose::PlanOptions popts;
    popts.workers = opts.workers;
    const compose::Plan plan = compose::plan_term(
        program, proc::call(entry, std::move(eargs)), popts);
    print_plan(plan);
    const compose::PlanResult r = compose::evaluate_plan(plan, popts);
    r.stats.to_table("explore " + entry).print(std::cout);
    std::cout << entry << ": " << r.lts.num_states() << " states, "
              << r.lts.num_transitions()
              << " transitions (minimal mod divbranching, peak "
              << r.stats.peak_states << " states)\n";
    if (!out_path.empty()) {
      save_any(r.lts, out_path);
    }
    return 0;
  }
  const explore::OraclePtr oracle = explore::proc_oracle(program, entry, args);
  const explore::ExploreResult r = explore::explore(*oracle, opts);
  r.stats.to_table(entry).print(std::cout);
  if (!out_path.empty()) {
    save_any(r.lts, out_path);
  }
  return 0;
}

int cmd_check_file(const std::string& aut_path,
                   const std::string& props_path) {
  const lts::Lts l = load(aut_path);
  std::ifstream in(props_path);
  if (!in) {
    throw std::runtime_error("cannot open " + props_path);
  }
  int failures = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    const std::size_t colon = line.find(':', start);
    if (colon == std::string::npos) {
      throw std::runtime_error(props_path + ":" + std::to_string(lineno) +
                               ": expected 'name: formula'");
    }
    const std::string name = line.substr(start, colon - start);
    const mc::FormulaPtr f = mc::parse_formula(line.substr(colon + 1));
    const bool holds = mc::check(l, f);
    failures += holds ? 0 : 1;
    std::cout << (holds ? "[PASS] " : "[FAIL] ") << name << "\n";
  }
  return failures == 0 ? 0 : 1;
}

int cmd_solve(const std::string& path, bool stats, bool lump) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  const core::SolveContext solve_ctx(path);
  imc::Imc m = imc::read_aut(in);
  std::cout << path << ": " << m.num_states() << " states, "
            << m.num_interactive() << " interactive + " << m.num_markovian()
            << " markovian transitions\n";
  if (lump) {
    // Exact stochastic lumping (maximal progress + branching lumping, rates
    // aggregated per block) — value-preserving by construction, so the
    // solver sees the quotient chain.  `solve --flat` skips it.
    imc::LumpResult lumped = imc::minimize_imc(m);
    std::cout << "lumped: " << m.num_states() << " -> "
              << lumped.quotient.num_states() << " states\n";
    m = std::move(lumped.quotient);
  }

  // Residual interactive nondeterminism: no single CTMC exists, so report
  // certified scheduler bounds (interval iteration, midpoints exact to the
  // solver tolerance) instead of a point value.
  bool nondet = false;
  for (imc::StateId s = 0; s < m.num_states(); ++s) {
    nondet = nondet || m.interactive(s).size() > 1;
  }
  if (nondet) {
    std::cout << "nondeterministic IMC: reporting scheduler bounds\n";
    const imc::Bounds tb = imc::absorption_time_bounds(m);
    std::cout << "expected time to absorption in [" << tb.min << ", "
              << tb.max << "]\n";
    std::vector<bool> absorbing(m.num_states(), false);
    for (imc::StateId s = 0; s < m.num_states(); ++s) {
      absorbing[s] = m.interactive(s).empty() && m.markovian(s).empty();
    }
    const imc::Bounds rb = imc::reachability_bounds(m, absorbing);
    std::cout << "P[eventual absorption] in [" << rb.min << ", " << rb.max
              << "]\n";
    if (stats) {
      core::solve_table().print(std::cout);
    }
    return 0;
  }
  const core::ClosedModel closed = core::close_model(m);
  std::cout << "closed CTMC: " << closed.ctmc.num_states() << " states\n";

  bool has_absorbing = false;
  for (markov::MState s = 0; s < closed.ctmc.num_states(); ++s) {
    has_absorbing = has_absorbing || closed.ctmc.is_absorbing(s);
  }
  if (has_absorbing) {
    std::cout << "expected time to absorption: "
              << markov::expected_absorption_time_from_initial(closed.ctmc)
              << "\n";
    if (stats) {
      core::solve_table().print(std::cout);
    }
    return 0;
  }
  const auto pi = markov::steady_state(closed.ctmc);
  // Report the throughput of every distinct probe label.
  std::set<std::string> labels;
  for (const auto& t : closed.ctmc.transitions()) {
    if (!t.label.empty()) {
      labels.insert(t.label);
    }
  }
  if (labels.empty()) {
    std::cout << "steady state computed; no labelled transitions to "
                 "measure\n";
  }
  for (const std::string& label : labels) {
    std::cout << "throughput(" << label
              << ") = " << markov::throughput(closed.ctmc, pi, label)
              << "\n";
  }
  if (stats) {
    core::solve_table().print(std::cout);
  }
  return 0;
}

/// The shipped case-study generators, lintable by name so CI can gate every
/// model the repo builds programmatically (the .proc examples are covered by
/// the file mode).
struct BuiltinModel {
  std::string entry;
  proc::Program program;
};

BuiltinModel xmas_builtin(const char* fabric) {
  const xmas::Compiled c = xmas::compile(xmas::builtin_fabric(fabric));
  return {c.entry, *c.program};
}

/// THE registry: every builtin model the CLI knows, in one table, so the
/// name list, the lookup and the help/error text cannot drift apart.
struct BuiltinSpec {
  const char* name;
  BuiltinModel (*build)();
};

const std::vector<BuiltinSpec>& builtin_registry() {
  static const std::vector<BuiltinSpec> registry = {
      {"fame-msi",
       [] {
         return BuiltinModel{
             "System", fame::coherence_system_program(fame::Protocol::kMsi)};
       }},
      {"fame-mesi",
       [] {
         return BuiltinModel{
             "System", fame::coherence_system_program(fame::Protocol::kMesi)};
       }},
      {"fame-msi-3",
       [] {
         return BuiltinModel{
             "SystemN",
             fame::coherence_system_n_program(fame::Protocol::kMsi, 3)};
       }},
      {"fame-mesi-3",
       [] {
         return BuiltinModel{
             "SystemN",
             fame::coherence_system_n_program(fame::Protocol::kMesi, 3)};
       }},
      {"noc-mesh", [] { return BuiltinModel{"Mesh", noc::mesh_program()}; }},
      {"noc-mesh-3x3",
       [] {
         return BuiltinModel{
             "Scenario", noc::single_packet_program(0, 8, /*hide_links=*/true,
                                                    noc::MeshDims{3, 3})};
       }},
      {"noc-single-packet",
       [] {
         return BuiltinModel{"Scenario", noc::single_packet_program(0, 3)};
       }},
      {"noc-stream",
       [] {
         return BuiltinModel{"Scenario",
                             noc::stream_program({noc::Flow{0, 3}})};
       }},
      {"xstream",
       [] {
         return BuiltinModel{"VirtualQueue", xstream::virtual_queue_program(
                                                 xstream::QueueConfig{})};
       }},
      {"xstream-lost-credit",
       [] {
         xstream::QueueConfig cfg;
         cfg.variant = xstream::QueueVariant::kLostCredit;
         return BuiltinModel{"VirtualQueue",
                             xstream::virtual_queue_program(cfg)};
       }},
      {"xstream-eager-credit",
       [] {
         xstream::QueueConfig cfg;
         cfg.variant = xstream::QueueVariant::kEagerCredit;
         return BuiltinModel{"VirtualQueue",
                             xstream::virtual_queue_program(cfg)};
       }},
      {"xmas-credit-loop", [] { return xmas_builtin("credit-loop"); }},
      {"xmas-vc-pair", [] { return xmas_builtin("vc-pair"); }},
      {"xmas-mesh2", [] { return xmas_builtin("mesh2"); }},
  };
  return registry;
}

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const BuiltinSpec& spec : builtin_registry()) {
      out.emplace_back(spec.name);
    }
    return out;
  }();
  return names;
}

std::string builtin_names_text() {
  std::string out;
  for (const std::string& name : builtin_names()) {
    out += (out.empty() ? "" : ", ") + name;
  }
  return out;
}

BuiltinModel builtin_model(const std::string& name) {
  for (const BuiltinSpec& spec : builtin_registry()) {
    if (name == spec.name) {
      return spec.build();
    }
  }
  throw UsageError("unknown builtin '" + name +
                   "' (known: " + builtin_names_text() + "; or 'all')");
}

int cmd_lint(int argc, char** argv) {
  // lint <model.proc> [Entry [int args...]] [--json] [--strict]
  // lint --imc <file.imc> | --builtin <name|all> [--json] [--strict]
  // lint --fixed-delay D [--error-bound EPS]   (combinable with any mode)
  // lint ... --bounds [--budget N]   (MV040-MV042 static state bounds)
  std::string model_path;
  std::string imc_path;
  std::string builtin;
  std::string entry;
  std::vector<proc::ExprPtr> entry_args;
  bool json = false;
  bool strict = false;
  bool bounds = false;
  std::uint64_t budget = 0;
  bool have_fixed_delay = false;
  double fixed_delay = 0.0;
  double error_bound = 0.05;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--imc" && i + 1 < argc) {
      imc_path = argv[++i];
    } else if (a == "--builtin" && i + 1 < argc) {
      builtin = argv[++i];
    } else if (a == "--bounds") {
      bounds = true;
    } else if (a == "--budget" && i + 1 < argc) {
      budget = parse_unsigned(argv[++i], "component budget");
    } else if (a == "--fixed-delay" && i + 1 < argc) {
      have_fixed_delay = true;
      fixed_delay = parse_double(argv[++i], "fixed delay");
    } else if (a == "--error-bound" && i + 1 < argc) {
      error_bound = parse_double(argv[++i], "error bound");
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("lint: unknown flag " + a);
    } else if (model_path.empty()) {
      model_path = a;
    } else if (entry.empty()) {
      entry = a;
    } else {
      entry_args.push_back(proc::lit(
          static_cast<proc::Value>(parse_long(a, "lint process argument"))));
    }
  }
  const int modes = static_cast<int>(!model_path.empty()) +
                    static_cast<int>(!imc_path.empty()) +
                    static_cast<int>(!builtin.empty());
  if (modes > 1) {
    throw UsageError(
        "lint: give exactly one of <model.proc>, --imc or --builtin");
  }
  if (modes == 0 && !have_fixed_delay) {
    throw UsageError("lint: nothing to lint");
  }
  if (fixed_delay <= 0.0 && have_fixed_delay) {
    throw UsageError("lint: --fixed-delay must be > 0");
  }
  if (!(error_bound > 0.0) || !(error_bound < 1.0)) {
    throw UsageError("lint: --error-bound must be in (0, 1)");
  }

  std::size_t errors = 0;
  std::size_t findings = 0;
  std::vector<core::Diagnostic> collected;  // for --json
  const auto report = [&](const std::string& name,
                          const analyze::Analysis& a) {
    errors += a.count(core::Severity::kError);
    findings += a.diagnostics.size();
    if (json) {
      collected.insert(collected.end(), a.diagnostics.begin(),
                       a.diagnostics.end());
    } else {
      std::cout << name << ": " << a.summary() << "\n"
                << core::render_text(a.diagnostics);
    }
  };
  const auto report_one = [&](const std::string& name, core::Diagnostic d) {
    analyze::Analysis a;
    a.diagnostics.push_back(std::move(d));
    report(name, a);
  };
  // --bounds: the MV04x static state-bound prediction (analyze/bounds) on
  // top of the structural lint; component factors are printed in text mode,
  // diagnostics merge into the shared exit-code and --json stream.
  const auto report_bounds = [&](const std::string& name,
                                 const proc::Program& program,
                                 const proc::TermPtr& root) {
    analyze::BoundOptions bopts;
    bopts.component_budget = budget;
    const analyze::BoundReport r =
        analyze::predicted_bounds(program, root, bopts);
    for (const core::Diagnostic& d : r.diagnostics) {
      errors += d.severity == core::Severity::kError ? 1 : 0;
    }
    findings += r.diagnostics.size();
    if (json) {
      collected.insert(collected.end(), r.diagnostics.begin(),
                       r.diagnostics.end());
    } else {
      std::cout << name << ": " << r.summary() << "\n";
      for (const analyze::ComponentBound& c : r.components) {
        std::cout << "  component " << c.name << ": "
                  << analyze::format_states(c.states) << " states"
                  << (c.cause.empty() ? "" : " — " + c.cause) << "\n";
      }
      std::cout << core::render_text(r.diagnostics);
    }
  };

  if (!model_path.empty()) {
    const std::string text = read_file(model_path);
    try {
      const proc::Program program = proc::parse_program(text);
      const proc::TermPtr root =
          entry.empty() ? nullptr : proc::call(entry, std::move(entry_args));
      report(model_path, analyze::lint_program(program, root));
      if (bounds) {
        if (root == nullptr) {
          throw UsageError("lint: --bounds needs an Entry process");
        }
        report_bounds(model_path, program, root);
      }
    } catch (const proc::ProcParseError& e) {
      // Parse failures are lint findings (MV010), not tool crashes.
      report_one(model_path, e.diagnostic());
    }
  } else if (!imc_path.empty()) {
    std::ifstream in(imc_path);
    if (!in) {
      throw std::runtime_error("cannot open " + imc_path);
    }
    try {
      const imc::Imc m = imc::read_aut(in);
      report(imc_path, analyze::lint_imc(m));
    } catch (const std::exception& e) {
      report_one(imc_path, core::Diagnostic{
                               "MV010", core::Severity::kError,
                               std::string("malformed .aut model: ") + e.what(),
                               imc_path, 0, 0, ""});
    }
  } else if (!builtin.empty()) {
    const std::vector<std::string> targets =
        builtin == "all" ? builtin_names() : std::vector<std::string>{builtin};
    for (const std::string& name : targets) {
      BuiltinModel m = builtin_model(name);
      report(name, analyze::lint_program(m.program, proc::call(m.entry)));
      if (bounds) {
        report_bounds(name, m.program, proc::call(m.entry));
      }
    }
  }
  if (have_fixed_delay) {
    report_one("fixed-delay " + core::fmt(fixed_delay, 6),
               analyze::fixed_delay_advisory(fixed_delay, error_bound));
  }

  if (json) {
    std::cout << core::render_json(collected) << "\n";
  }
  return errors > 0 || (strict && findings > 0) ? 1 : 0;
}

int cmd_dot(const std::string& in, const std::string& out) {
  const lts::Lts l = load(in);
  if (out.empty()) {
    lts::write_dot(std::cout, l);
  } else {
    std::ofstream os(out);
    if (!os) {
      throw std::runtime_error("cannot write " + out);
    }
    lts::write_dot(os, l);
    std::cout << "written to " << out << "\n";
  }
  return 0;
}

int cmd_compose(int argc, char** argv) {
  // compose (--builtin <name> | <model.proc> <Entry>) [--flat] [-j N]
  //         [-o out.aut|out.mvl]
  std::string builtin;
  std::string model_path;
  std::string entry;
  std::string out_path;
  bool flat = false;
  compose::PlanOptions popts;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--builtin" && i + 1 < argc) {
      builtin = argv[++i];
    } else if (a == "--flat") {
      flat = true;
    } else if (a == "-j" && i + 1 < argc) {
      popts.workers = parse_unsigned(argv[++i], "worker count");
    } else if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("compose: unknown flag " + a);
    } else if (model_path.empty()) {
      model_path = a;
    } else if (entry.empty()) {
      entry = a;
    } else {
      throw UsageError("compose: unexpected argument '" + a + "'");
    }
  }
  if (builtin.empty() == model_path.empty()) {
    throw UsageError("compose: give either --builtin <name> or "
                     "<model.proc> <Entry>");
  }
  if (!model_path.empty() && entry.empty()) {
    throw UsageError("compose: <model.proc> needs an <Entry> process");
  }
  std::shared_ptr<const proc::Program> program;
  if (!builtin.empty()) {
    BuiltinModel m = builtin_model(builtin);
    entry = m.entry;
    program =
        std::make_shared<const proc::Program>(std::move(m.program));
  } else {
    program = std::make_shared<const proc::Program>(
        proc::parse_program(read_file(model_path)));
  }

  const compose::Plan plan = compose::plan_program(program, entry, popts);
  print_plan(plan);
  if (plan.planned) {
    std::cout << "components:";
    for (const std::string& c : plan.components) {
      std::cout << " " << c;
    }
    std::cout << "\n";
  }
  if (flat) {
    // Baseline only: the monolithic generate-then-minimise pipeline in the
    // same canonical normal form.
    compose::PlanResult r = compose::flat_reference(
        program, proc::call(entry, {}), popts);
    r.stats.to_table("compose --flat " + entry).print(std::cout);
    std::cout << entry << ": " << r.lts.num_states() << " states, "
              << r.lts.num_transitions() << " transitions (flat reference)\n";
    if (!out_path.empty()) {
      save_any(r.lts, out_path);
    }
    return 0;
  }
  const compose::PlanResult planned = compose::evaluate_plan(plan, popts);
  planned.stats.to_table("compose " + entry).print(std::cout);
  const std::size_t final_states = planned.lts.num_states();
  std::cout << entry << ": " << final_states << " states, "
            << planned.lts.num_transitions()
            << " transitions (minimal mod divbranching)\n"
            << "peak intermediate: " << planned.stats.peak_states
            << " states ("
            << core::fmt(final_states == 0
                             ? 0.0
                             : static_cast<double>(planned.stats.peak_states) /
                                   static_cast<double>(final_states),
                         2)
            << "x final)\n";

  const compose::PlanResult reference = compose::flat_reference(
      program, proc::call(entry, {}), popts);
  std::ostringstream a;
  std::ostringstream b;
  explore::write_lts_stream(a, planned.lts);
  explore::write_lts_stream(b, reference.lts);
  const bool identical = a.str() == b.str();
  std::cout << "flat reference: " << reference.stats.peak_states
            << " peak states; results "
            << (identical ? "byte-identical" : "DIFFER") << "\n";
  if (!out_path.empty()) {
    save_any(planned.lts, out_path);
  }
  return identical ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  serve::ServerOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      opts.endpoint = argv[++i];
    } else if (a == "-j" && i + 1 < argc) {
      opts.service.workers = parse_unsigned(argv[++i], "worker count");
    } else if (a == "--queue" && i + 1 < argc) {
      opts.service.queue_capacity = parse_unsigned(argv[++i], "queue size");
    } else if (a == "--admit" && i + 1 < argc) {
      opts.service.admission_budget =
          parse_unsigned(argv[++i], "admission budget");
    } else if (a == "--deadline" && i + 1 < argc) {
      opts.service.default_deadline =
          std::chrono::milliseconds(parse_unsigned(argv[++i], "deadline"));
    } else if (a == "--cache-mb" && i + 1 < argc) {
      opts.service.cache.capacity_bytes =
          static_cast<std::size_t>(parse_unsigned(argv[++i], "cache size"))
          << 20;
    } else if (a == "--cache-dir" && i + 1 < argc) {
      opts.service.cache.disk_dir = argv[++i];
    } else {
      throw UsageError("serve: unknown flag " + a);
    }
  }
  if (opts.endpoint.empty()) {
    throw UsageError("serve: --socket <path|host:port> is required");
  }
  serve::Server server(std::move(opts));
  // Print the *bound* endpoint: for "host:0" this is the ephemeral port the
  // kernel picked, which is what clients must connect to.
  std::cout << "serving on " << server.bound_endpoint().to_string() << "\n"
            << std::flush;
  server.run();
  server.service().metrics().to_table().print(std::cout);
  return 0;
}

int cmd_client(int argc, char** argv) {
  std::string endpoint;
  std::chrono::milliseconds connect_timeout{0};
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      endpoint = argv[++i];
    } else if (a == "--retry-ms" && i + 1 < argc) {
      connect_timeout =
          std::chrono::milliseconds(parse_unsigned(argv[++i], "retry budget"));
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("client: unknown flag " + a);
    } else {
      rest.push_back(a);
    }
  }
  if (endpoint.empty() || rest.empty()) {
    throw UsageError("client: --socket <path|host:port> and a verb are "
                     "required");
  }
  serve::Request request;
  request.id = 1;
  try {
    request.verb = serve::parse_verb(rest[0]);
  } catch (const serve::ProtocolError&) {
    throw UsageError("client: unknown verb '" + rest[0] + "'");
  }
  switch (request.verb) {
    case serve::Verb::kStats:
      if (rest.size() == 2 && rest[1] == "--json") {
        request.arg = "json";  // the service answers with metrics JSON
        break;
      }
      [[fallthrough]];
    case serve::Verb::kPing:
    case serve::Verb::kShutdown:
      if (rest.size() != 1) {
        throw UsageError("client: '" + rest[0] + "' takes no arguments" +
                         (request.verb == serve::Verb::kStats
                              ? " (except stats --json)"
                              : ""));
      }
      break;
    case serve::Verb::kReach:
      if (rest.size() != 2 && rest.size() != 3) {
        throw UsageError("client: reach <file.imc> [time-bound]");
      }
      request.payload = read_file(rest[1]);
      if (rest.size() == 3) {
        request.arg = rest[2];
      }
      break;
    case serve::Verb::kBounds:
      if (rest.size() != 2) {
        throw UsageError("client: bounds <file.imc>");
      }
      request.payload = read_file(rest[1]);
      break;
    case serve::Verb::kCheck:
      if (rest.size() != 3) {
        throw UsageError("client: check <file.aut> '<formula>'");
      }
      request.payload = read_file(rest[1]);
      request.arg = rest[2];
      break;
    case serve::Verb::kThroughput:
      if (rest.size() != 3) {
        throw UsageError("client: throughput <file.imc> <label-glob>");
      }
      request.payload = read_file(rest[1]);
      request.arg = rest[2];
      break;
  }
  serve::Client client(endpoint, connect_timeout);
  const serve::Response response = client.call(request);
  if (response.status == serve::Status::kOk) {
    std::cout << response.body << "\n";
    return 0;
  }
  std::cerr << serve::to_string(response.status) << ": " << response.body
            << "\n";
  if (response.status == serve::Status::kOverloaded) {
    return 3;  // transient: retrying later can succeed
  }
  if (response.status == serve::Status::kInvalid) {
    return 4;  // permanent: the model itself is ill-formed
  }
  return 2;
}

int cmd_dse(int argc, char** argv) {
  // dse [--spec <file> | --builtin <default|smoke>] [-j N] [--socket PATH]
  //     [--retry-ms MS] [--deadline MS] [--repeat N] [--json PATH]
  //     [--csv PATH] [--no-timing]
  std::string spec_path;
  std::string builtin = "default";
  bool builtin_set = false;
  std::string json_path;
  std::string csv_path;
  bool timing = true;
  dse::DriverOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (a == "--builtin" && i + 1 < argc) {
      builtin = argv[++i];
      builtin_set = true;
    } else if (a == "-j" && i + 1 < argc) {
      opts.workers = parse_unsigned(argv[++i], "worker count");
    } else if (a == "--socket" && i + 1 < argc) {
      opts.socket = argv[++i];
    } else if (a == "--retry-ms" && i + 1 < argc) {
      opts.connect_timeout =
          std::chrono::milliseconds(parse_unsigned(argv[++i], "retry budget"));
    } else if (a == "--deadline" && i + 1 < argc) {
      opts.deadline =
          std::chrono::milliseconds(parse_unsigned(argv[++i], "deadline"));
    } else if (a == "--repeat" && i + 1 < argc) {
      opts.repeat = parse_unsigned(argv[++i], "repeat count");
      if (opts.repeat == 0) {
        throw UsageError("dse: --repeat must be >= 1");
      }
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (a == "--no-timing") {
      timing = false;
    } else if (a == "--flat") {
      opts.strategy = compose::Strategy::kFlat;
    } else {
      throw UsageError("dse: unknown flag " + a);
    }
  }
  if (!spec_path.empty() && builtin_set) {
    throw UsageError("dse: --spec and --builtin are mutually exclusive");
  }

  dse::SweepSpec spec;
  try {
    const std::string text =
        spec_path.empty() ? dse::builtin_sweep_spec(builtin)
                          : read_file(spec_path);
    spec = dse::parse_sweep_spec(text);
  } catch (const dse::SpecError& e) {
    throw UsageError(std::string("dse: ") + e.what());
  }

  const dse::SweepResult result = dse::run_sweep(spec, opts);
  std::cout << result.name << ": " << result.raw_points << " grid points, "
            << result.pruned << " pruned by constraints, "
            << result.points.size() << " evaluated ("
            << result.probes_submitted << " probes, "
            << result.distinct_keys << " distinct sub-models)\n";
  if (result.have_service_metrics) {
    std::cout << "serve: " << result.service.solves << " solves, "
              << (result.service.cache_hits + result.service.coalesced)
              << " reused, " << result.service.shed << " shed\n";
  }
  std::cout << "pipeline cache: " << result.pipeline.hits << " hits, "
            << result.pipeline.misses << " misses, "
            << result.pipeline.evictions << " evicted\n";
  dse::front_table(result).print(std::cout);
  for (const dse::PointResult& p : result.points) {
    if (p.status == "gated") {
      std::cerr << p.point.id << ": gated by lint\n";
      for (const std::string& e : p.gate_errors) {
        std::cerr << "  " << e << "\n";
      }
    } else if (p.status == "error") {
      std::cerr << p.point.id << ": evaluation failed\n";
    }
  }
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      throw std::runtime_error("cannot write " + json_path);
    }
    os << dse::to_json(result, timing);
    std::cout << "written to " << json_path << "\n";
  }
  if (!csv_path.empty()) {
    std::ofstream os(csv_path);
    if (!os) {
      throw std::runtime_error("cannot write " + csv_path);
    }
    os << dse::to_csv(result);
    std::cout << "written to " << csv_path << "\n";
  }
  return result.all_ok() ? 0 : 1;
}

int cmd_xmas(int argc, char** argv) {
  // xmas (<file.xmas> | --builtin <name> [--capacity N]) [--lint | --compile
  //      | --solve] [--items N] [--json] [--strict] [--flat] [-o out.proc]
  std::string path;
  std::string builtin;
  int capacity = 2;
  bool have_capacity = false;
  int items = 0;
  std::string mode;  // "lint" (default), "compile", "solve"
  bool json = false;
  bool strict = false;
  bool flat = false;
  std::string out_path;
  const auto set_mode = [&](const char* m) {
    if (!mode.empty() && mode != m) {
      throw UsageError("xmas: give at most one of --lint, --compile, --solve");
    }
    mode = m;
  };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--builtin" && i + 1 < argc) {
      builtin = argv[++i];
    } else if (a == "--capacity" && i + 1 < argc) {
      capacity = static_cast<int>(parse_long(argv[++i], "capacity"));
      have_capacity = true;
    } else if (a == "--items" && i + 1 < argc) {
      items = static_cast<int>(parse_long(argv[++i], "items"));
    } else if (a == "--lint") {
      set_mode("lint");
    } else if (a == "--compile") {
      set_mode("compile");
    } else if (a == "--solve") {
      set_mode("solve");
    } else if (a == "--json") {
      json = true;
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--flat") {
      flat = true;
    } else if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("xmas: unknown flag " + a);
    } else if (path.empty()) {
      path = a;
    } else {
      throw UsageError("xmas: more than one netlist file given");
    }
  }
  if (mode.empty()) {
    mode = "lint";
  }
  if (path.empty() == builtin.empty()) {
    throw UsageError("xmas: give either <file.xmas> or --builtin <name>");
  }
  if (have_capacity && builtin.empty()) {
    throw UsageError(
        "xmas: --capacity only applies to --builtin fabrics (file netlists "
        "size their own queues)");
  }
  if (items < 0 || items > 64) {
    throw UsageError("xmas: --items must be in 0..64");
  }

  // Findings (parse errors included) are reported through the one lint
  // channel, so `xmas --lint` output matches `lint` byte-for-byte in shape.
  const std::string name = path.empty() ? builtin : path;
  const auto report = [&](const analyze::Analysis& a) {
    if (json) {
      std::cout << core::render_json(a.diagnostics) << "\n";
    } else {
      std::cout << name << ": " << a.summary() << "\n"
                << core::render_text(a.diagnostics);
    }
    const std::size_t errors = a.count(core::Severity::kError);
    return errors > 0 || (strict && !a.diagnostics.empty()) ? 1 : 0;
  };

  xmas::Netlist net;
  if (!builtin.empty()) {
    try {
      net = xmas::builtin_fabric(builtin, capacity);
    } catch (const std::invalid_argument& e) {
      throw UsageError("xmas: " + std::string(e.what()));
    }
  } else {
    try {
      net = xmas::parse_netlist(read_file(path));
    } catch (const xmas::ParseError& e) {
      analyze::Analysis a;
      a.diagnostics.push_back(e.diagnostic());
      report(a);
      return 1;
    }
  }

  const analyze::Analysis lint = analyze::lint_netlist(net);
  if (mode == "lint") {
    return report(lint);
  }
  if (!lint.clean()) {
    // compile/solve gate on the structural lint, like explore/serve gate on
    // the program lint.
    return report(lint);
  }

  xmas::CompileOptions copts;
  copts.burst = mode == "compile" ? items : 0;
  const xmas::Compiled compiled = xmas::compile(net, copts);
  if (mode == "compile") {
    const std::string text = compiled.program->to_string();
    if (out_path.empty()) {
      std::cout << text;
    } else {
      std::ofstream os(out_path);
      if (!os) {
        throw std::runtime_error("cannot write " + out_path);
      }
      os << text;
      std::cout << "written to " << out_path << "\n";
    }
    return 0;
  }

  // --solve: steady-state throughput over the sink gates, plus (with
  // --items N) the burst latency bounds, through the serve solvers.
  const compose::Strategy strategy =
      flat ? compose::Strategy::kFlat : compose::Strategy::kPlanned;
  const std::map<std::string, double> rates = xmas::rate_table(compiled);
  const lts::Lts steady = xmas::compiled_lts(compiled, strategy);
  std::cout << "fabric " << net.name << ": " << steady.num_states()
            << " states, " << steady.num_transitions() << " transitions ("
            << compose::to_string(strategy) << ")\n";
  std::string glob = compiled.sink_gates.front();
  for (const std::string& g : compiled.sink_gates) {
    std::size_t i = 0;
    while (i < glob.size() && i < g.size() && glob[i] == g[i]) ++i;
    glob.resize(i);
  }
  serve::Request request;
  request.verb = serve::Verb::kThroughput;
  request.arg = "uniform:" + glob + "*";
  request.payload = imc::to_aut(core::decorate_with_rates(steady, rates));
  std::cout << serve::solve_request(request) << "\n";
  if (items > 0) {
    xmas::CompileOptions burst_opts;
    burst_opts.burst = items;
    const xmas::Compiled burst = xmas::compile(net, burst_opts);
    serve::Request bounds;
    bounds.verb = serve::Verb::kBounds;
    bounds.payload = imc::to_aut(core::decorate_with_rates(
        xmas::compiled_lts(burst, strategy), rates));
    std::cout << "burst(items=" << items
              << "): " << serve::solve_request(bounds) << "\n";
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  multival_cli info  <file.aut>\n"
         "  multival_cli min   <strong|weak|branching|divbranching> <in.aut> "
         "[out.aut]\n"
         "  multival_cli det   <in.aut> [out.aut]\n"
         "  multival_cli cmp   <strong|weak|branching|divbranching|trace> "
         "<a.aut> <b.aut>\n"
         "  multival_cli check <file.aut> '<formula>'\n"
         "  multival_cli deadlocks <file.aut>\n"
         "  multival_cli gen   <model.proc> <Entry> [args...] [-o out.aut]\n"
         "  multival_cli explore <model.proc> <Entry> [args...] "
         "[--plan|--flat] [-j N] [--dfs] [--fp [bits]] [-o out.aut|out.mvl]\n"
         "  multival_cli compose (--builtin <name> | <model.proc> <Entry>) "
         "[--flat] [-j N] [-o out.aut|out.mvl]\n"
         "  multival_cli lint  <model.proc> [Entry [args...]] [--json] "
         "[--strict] [--bounds [--budget N]]\n"
         "  multival_cli lint  --imc <file.imc> | --builtin <name|all> "
         "[--json] [--strict]\n"
         "  multival_cli lint  --fixed-delay D [--error-bound EPS]\n"
         "  multival_cli solve <file.imc> [--stats] [--plan|--flat]\n"
         "  multival_cli check-file <file.aut> <props.mcl>\n"
         "  multival_cli dot   <file.aut> [out.dot]\n"
         "  multival_cli serve --socket <path|host:port> [-j N] [--queue N] "
         "[--deadline MS] [--cache-mb N] [--cache-dir DIR] [--admit N]\n"
         "  multival_cli client --socket <endpoint> [--retry-ms MS] "
         "<ping|shutdown|stats [--json]>\n"
         "  multival_cli client --socket <endpoint> reach <file.imc> "
         "[time-bound]\n"
         "  multival_cli client --socket <endpoint> bounds <file.imc>\n"
         "  multival_cli client --socket <endpoint> check <file.aut> "
         "'<formula>'\n"
         "  multival_cli client --socket <endpoint> throughput <file.imc> "
         "<label-glob>\n"
         "  multival_cli dse   [--spec <file> | --builtin <default|smoke>] "
         "[-j N] [--socket EP[,EP...] [--retry-ms MS]] [--deadline MS] "
         "[--repeat N] [--json PATH] [--csv PATH] [--no-timing] [--flat]\n"
         "  multival_cli xmas  (<file.xmas> | --builtin <name> "
         "[--capacity N]) [--lint | --compile | --solve] [--items N] "
         "[--json] [--strict] [--flat] [-o out.proc]\n"
         "       xmas builtins: ";
  {
    bool first = true;
    for (const std::string& name : xmas::builtin_fabric_names()) {
      std::cerr << (first ? "" : ", ") << name;
      first = false;
    }
  }
  std::cerr << "\n       model builtins (compose/lint): " << builtin_names_text()
            << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "info" && argc == 3) {
      return cmd_info(argv[2]);
    }
    if (cmd == "min" && (argc == 4 || argc == 5)) {
      return cmd_min(argv[2], argv[3], argc == 5 ? argv[4] : "");
    }
    if (cmd == "det" && (argc == 3 || argc == 4)) {
      return cmd_det(argv[2], argc == 4 ? argv[3] : "");
    }
    if (cmd == "cmp" && argc == 5) {
      return cmd_cmp(argv[2], argv[3], argv[4]);
    }
    if (cmd == "check" && argc == 4) {
      return cmd_check(argv[2], argv[3]);
    }
    if (cmd == "deadlocks" && argc == 3) {
      return cmd_deadlocks(argv[2]);
    }
    if (cmd == "gen" && argc >= 4) {
      return cmd_gen(argc, argv);
    }
    if (cmd == "explore" && argc >= 4) {
      return cmd_explore(argc, argv);
    }
    if (cmd == "lint" && argc >= 3) {
      return cmd_lint(argc, argv);
    }
    if (cmd == "solve" && argc >= 3) {
      bool stats = false;
      bool lump = true;
      for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--stats") {
          stats = true;
        } else if (a == "--plan") {
          lump = true;
        } else if (a == "--flat") {
          lump = false;
        } else {
          return usage();
        }
      }
      return cmd_solve(argv[2], stats, lump);
    }
    if (cmd == "check-file" && argc == 4) {
      return cmd_check_file(argv[2], argv[3]);
    }
    if (cmd == "dot" && (argc == 3 || argc == 4)) {
      return cmd_dot(argv[2], argc == 4 ? argv[3] : "");
    }
    if (cmd == "compose" && argc >= 3) {
      return cmd_compose(argc, argv);
    }
    if (cmd == "serve" && argc >= 3) {
      return cmd_serve(argc, argv);
    }
    if (cmd == "client" && argc >= 4) {
      return cmd_client(argc, argv);
    }
    if (cmd == "dse") {
      return cmd_dse(argc, argv);
    }
    if (cmd == "xmas" && argc >= 3) {
      return cmd_xmas(argc, argv);
    }
    return usage();
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
