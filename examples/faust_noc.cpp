// FAUST-style NoC: verify the router and the 2x2 mesh formally, then
// compute per-path latency and contention throughput — the CEA/Leti use of
// the Multival flow.
#include <iostream>

#include "core/report.hpp"
#include "lts/analysis.hpp"
#include "mc/evaluator.hpp"
#include "mc/properties.hpp"
#include "noc/mesh.hpp"
#include "noc/perf.hpp"
#include "noc/router.hpp"

int main() {
  using namespace multival;
  using namespace multival::noc;

  // -- router verification -------------------------------------------------
  const lts::Lts router = router_lts(0);
  std::cout << "router 0: " << router.num_states() << " states, "
            << router.num_transitions() << " transitions\n";
  std::cout << "  deadlock free: "
            << (mc::check(router, mc::deadlock_freedom()) ? "yes" : "NO")
            << "\n\n";

  // -- mesh delivery verification ------------------------------------------
  core::Table delivery("2x2 mesh: single-packet delivery",
                       {"src", "dst", "states", "delivered", "no misroute"});
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src == dst) {
        continue;
      }
      const lts::Lts l = single_packet_lts(src, dst);
      const bool inevitable = mc::check(
          l, mc::inevitable(mc::act("LO" + std::to_string(dst) + " *")));
      bool clean = true;
      for (int other = 0; other < 4; ++other) {
        if (other != dst) {
          clean = clean &&
                  mc::check(l, mc::never(
                                   mc::act("LO" + std::to_string(other) + " *")));
        }
      }
      delivery.add_row({std::to_string(src), std::to_string(dst),
                        std::to_string(l.num_states()),
                        inevitable ? "yes" : "NO", clean ? "yes" : "NO"});
    }
  }
  delivery.print(std::cout);

  // -- latency per hop count -------------------------------------------------
  const NocRates rates;
  core::Table latency("2x2 mesh: packet latency by path",
                      {"path", "hops", "latency"});
  latency.add_row({"0 -> 0", "0", core::fmt(packet_latency(0, 0, rates))});
  latency.add_row({"0 -> 1", "1", core::fmt(packet_latency(0, 1, rates))});
  latency.add_row({"0 -> 2", "1", core::fmt(packet_latency(0, 2, rates))});
  latency.add_row({"0 -> 3", "2", core::fmt(packet_latency(0, 3, rates))});
  latency.print(std::cout);

  // -- throughput under contention -------------------------------------------
  core::Table thr("2x2 mesh: delivery throughput",
                  {"traffic", "throughput"});
  thr.add_row({"0->3 alone", core::fmt(delivery_throughput({{0, 3}}, rates))});
  thr.add_row({"0->3 + 1->3 (shared Y link)",
               core::fmt(delivery_throughput({{0, 3}, {1, 3}}, rates))});
  thr.add_row({"0->1 + 2->3 (disjoint)",
               core::fmt(delivery_throughput({{0, 1}, {2, 3}}, rates))});
  thr.print(std::cout);
  return 0;
}
